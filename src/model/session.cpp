#include "model/session.hpp"

#include <cstdio>
#include <mutex>
#include <span>
#include <utility>

#include "accel/accel_driver.hpp"
#include "homme/checkpoint.hpp"
#include "homme/init.hpp"
#include "homme/local_state.hpp"
#include "sw/cg_pool.hpp"

namespace model {

// -- SessionConfig -----------------------------------------------------------

homme::DycoreConfig SessionConfig::dycore_config() const {
  homme::DycoreConfig c;
  c.dt = dt;
  c.remap_freq = remap_freq;
  c.nu = nu;
  c.limit_tracers = limit_tracers;
  c.hypervis_on = hypervis_on;
  return c;
}

homme::Dims SessionConfig::dims() const {
  homme::Dims d;
  d.nlev = nlev;
  d.qsize = qsize;
  d.moist = moist;
  return d;
}

void SessionConfig::validate() const {
  if (ne < 1) throw ConfigError("SessionConfig: ne must be >= 1");
  if (radius <= 0.0) throw ConfigError("SessionConfig: radius must be > 0");
  if (nlev < 1) throw ConfigError("SessionConfig: nlev must be >= 1");
  if (qsize < 0) throw ConfigError("SessionConfig: qsize must be >= 0");
  if (dt < 0.0) throw ConfigError("SessionConfig: dt must be >= 0");
  if (remap_freq < 1) {
    throw ConfigError("SessionConfig: remap_freq must be >= 1");
  }
  if (nranks < 1) throw ConfigError("SessionConfig: nranks must be >= 1");
  if (nranks > 6 * ne * ne) {
    throw ConfigError("SessionConfig: more ranks than elements (" +
                      std::to_string(nranks) + " > " +
                      std::to_string(6 * ne * ne) + ")");
  }
  if (moist && qsize < 1) {
    throw ConfigError("SessionConfig: moist dynamics need tracer 0 "
                      "(specific humidity); qsize must be >= 1");
  }
  if (physics && qsize < 1) {
    throw ConfigError("SessionConfig: physics needs tracer 0 (specific "
                      "humidity); qsize must be >= 1");
  }
  if (physics && nranks > 1) {
    throw ConfigError("SessionConfig: physics is only supported on "
                      "sequential sessions (nranks == 1)");
  }
  if (physics_dt < 0.0) {
    throw ConfigError("SessionConfig: physics_dt must be >= 0");
  }
  if (!init_spec.name.empty() && !init_spec.engaged()) {
    throw ConfigError("SessionConfig: init_spec \"" + init_spec.name +
                      "\" names an IC but has no generator");
  }
  if (init_spec.member < 0) {
    throw ConfigError("SessionConfig: init_spec.member must be >= 0");
  }
  if (init_spec.perturb < 0.0) {
    throw ConfigError("SessionConfig: init_spec.perturb must be >= 0");
  }
  if (checkpoint_freq < 0) {
    throw ConfigError("SessionConfig: checkpoint_freq must be >= 0");
  }
  if (checkpoint_freq > 0 && checkpoint_base.empty()) {
    throw ConfigError("SessionConfig: checkpoint cadence needs a "
                      "checkpoint_base path");
  }
  if (ckpt_full_interval < 0) {
    throw ConfigError("SessionConfig: ckpt_full_interval must be >= 0");
  }
  if (ckpt_full_interval > 0 && checkpoint_base.empty()) {
    throw ConfigError("SessionConfig: delta checkpoints need a "
                      "checkpoint_base path");
  }
  if (ckpt_full_interval > 0 && nranks > 1) {
    throw ConfigError("SessionConfig: delta checkpoints are only supported "
                      "on sequential sessions (nranks == 1)");
  }
  if (watchdog_s < 0.0) {
    throw ConfigError("SessionConfig: watchdog_s must be >= 0");
  }
  if (core_groups < 1) {
    throw ConfigError("SessionConfig: core_groups must be >= 1");
  }
  if (cg_pool == nullptr && !cg_affinity.empty()) {
    throw ConfigError("SessionConfig: cg_affinity without a cg_pool");
  }
  if (cg_pool != nullptr) {
    if (cg_affinity.empty()) {
      throw ConfigError("SessionConfig: cg_pool needs a non-empty "
                        "cg_affinity");
    }
    for (int i : cg_affinity) {
      if (i < 0 || i >= cg_pool->size()) {
        throw ConfigError("SessionConfig: cg_affinity index " +
                          std::to_string(i) + " outside pool of " +
                          std::to_string(cg_pool->size()) + " core groups");
      }
    }
  }
}

// -- state digest ------------------------------------------------------------

std::uint32_t state_digest(const homme::State& state, int step_count) {
  std::vector<std::uint32_t> crcs;
  crcs.reserve(state.size() * 6 + 2);
  auto add = [&crcs](std::span<const double> v) {
    crcs.push_back(homme::crc32(v.data(), v.size() * sizeof(double)));
  };
  for (const auto& e : state) {
    add(e.u1.span());
    add(e.u2.span());
    add(e.T.span());
    add(e.dp.span());
    add(e.qdp.span());
    add(e.phis.span());
  }
  crcs.push_back(static_cast<std::uint32_t>(state.size()));
  crcs.push_back(static_cast<std::uint32_t>(step_count));
  return homme::crc32(crcs.data(), crcs.size() * sizeof(std::uint32_t));
}

// -- MeshBundle --------------------------------------------------------------

std::shared_ptr<const MeshBundle> MeshBundle::build(int ne, int nranks,
                                                    double radius) {
  auto b = std::make_shared<MeshBundle>();
  b->mesh = mesh::CubedSphere::build(ne, radius);
  b->partition = mesh::Partition::build(b->mesh, nranks);
  b->plan = mesh::CommPlan::build(b->mesh, b->partition);
  b->ne = ne;
  b->nranks = nranks;
  return b;
}

std::size_t MeshBundle::bytes() const {
  std::size_t n = sizeof(MeshBundle);
  const std::size_t nelem = static_cast<std::size_t>(mesh.nelem());
  n += nelem * sizeof(mesh::ElementGeom);             // geom_
  n += nelem * sizeof(std::array<int, mesh::kNpp>);   // nodes_
  // node_elems_: one (elem, gidx) pair per GLL point of every element.
  n += nelem * mesh::kNpp * sizeof(std::pair<int, int>);
  n += partition.elem_rank.size() * sizeof(int);
  for (const auto& re : partition.rank_elems) n += re.size() * sizeof(int);
  for (const auto& neighbors : plan.per_rank) {
    for (const auto& nb : neighbors) {
      n += sizeof(nb) + nb.nodes.size() * sizeof(int);
    }
  }
  return n;
}

// -- Session -----------------------------------------------------------------

Session::Session(SessionConfig cfg)
    : Session(std::move(cfg), nullptr) {}

Session::Session(SessionConfig cfg, std::shared_ptr<const MeshBundle> bundle)
    : cfg_(std::move(cfg)), bundle_(std::move(bundle)) {
  cfg_.validate();
  if (bundle_ == nullptr) {
    bundle_ = MeshBundle::build(cfg_.ne, cfg_.nranks, cfg_.radius);
  } else if (!bundle_->compatible(cfg_)) {
    throw ConfigError("Session: mesh bundle is ne" +
                      std::to_string(bundle_->ne) + "/" +
                      std::to_string(bundle_->nranks) +
                      " ranks, config wants ne" + std::to_string(cfg_.ne) +
                      "/" + std::to_string(cfg_.nranks));
  }
  build();
}

Session::~Session() = default;

void Session::build() {
  dims_ = cfg_.dims();
  tracer_ = std::make_unique<obs::Tracer>(cfg_.trace_domain);
  tracer_->enable(cfg_.trace);

  // Initial condition on the global mesh. An engaged InitSpec (the
  // scenario:: path — vortex seeds, perturbed ensemble members) replaces
  // the builtin enum wholesale, tracer fill included.
  homme::State global;
  if (cfg_.init_spec.engaged()) {
    global = cfg_.init_spec.generate(bundle_->mesh, dims_, cfg_.init_spec);
    if (cfg_.init_spec.tracers && cfg_.qsize > 0) {
      homme::init_tracers(bundle_->mesh, dims_, global);
    }
  } else {
    switch (cfg_.init) {
      case SessionConfig::Init::kBaroclinic:
        global = homme::baroclinic(bundle_->mesh, dims_);
        break;
      case SessionConfig::Init::kSolidBody:
        global = homme::solid_body_rotation(bundle_->mesh, dims_);
        break;
      case SessionConfig::Init::kIsothermalRest:
        global = homme::isothermal_rest(bundle_->mesh, dims_);
        break;
    }
    if (cfg_.init_tracers && cfg_.qsize > 0) {
      homme::init_tracers(bundle_->mesh, dims_, global);
    }
  }

  const homme::DycoreConfig dcfg = cfg_.dycore_config();
  if (cfg_.nranks == 1) {
    dycore_ = std::make_unique<homme::Dycore>(bundle_->mesh, dims_, dcfg);
    dycore_->set_tracer(tracer_.get());
    state_ = std::move(global);
  } else {
    cluster_ = std::make_unique<net::Cluster>(cfg_.nranks);
    cluster_->set_fault_plan(cfg_.faults);
    cluster_->set_watchdog(cfg_.watchdog_s);
    cluster_->set_tracer(tracer_.get());
    pds_.reserve(static_cast<std::size_t>(cfg_.nranks));
    locals_.reserve(static_cast<std::size_t>(cfg_.nranks));
    for (int r = 0; r < cfg_.nranks; ++r) {
      pds_.push_back(std::make_unique<homme::ParallelDycore>(
          bundle_->mesh, bundle_->partition, bundle_->plan, dims_, dcfg, r,
          cfg_.exchange));
      pds_.back()->set_tracer(tracer_.get());
      locals_.push_back(
          homme::gather_local(bundle_->partition, r, global));
    }
  }

  if (cfg_.backend == SessionConfig::Backend::kPipeline) {
    if (cfg_.nranks == 1) {
      accels_.push_back(std::make_unique<accel::PipelineAccelerator>(
          bundle_->mesh, dims_));
      accels_[0]->set_tracer(tracer_.get(), "accel");
      if (cfg_.cg_pool != nullptr) {
        accels_[0]->set_cg_pool(cfg_.cg_pool, cfg_.cg_affinity);
      } else if (cfg_.core_groups > 1) {
        accels_[0]->use_core_groups(cfg_.core_groups);
      }
      accels_[0]->set_fault_plan(cfg_.faults);
      dycore_->attach_accelerator(accels_[0].get());
    } else {
      // Parallel ranks are the MPE-level decomposition: with N > 1 core
      // groups (or an engine-provided pool) all ranks share one pool and
      // rank r's elements feed the pipeline on group affinity[r % N],
      // contending on the shared memory controller. Ranks step on
      // cluster threads, so sampled stream counts (and modeled cycles)
      // follow real concurrency; results stay bit-identical.
      std::shared_ptr<sw::CgPool> pool = cfg_.cg_pool;
      std::vector<int> affinity = cfg_.cg_affinity;
      if (pool == nullptr && cfg_.core_groups > 1) {
        pool = std::make_shared<sw::CgPool>(cfg_.core_groups);
        affinity.resize(static_cast<std::size_t>(cfg_.core_groups));
        for (int i = 0; i < cfg_.core_groups; ++i) {
          affinity[static_cast<std::size_t>(i)] = i;
        }
        pool->set_tracer(tracer_.get(), sw::CoreGroup::kDefaultTracePid,
                         "accel");
      }
      for (int r = 0; r < cfg_.nranks; ++r) {
        const auto& elems =
            bundle_->partition.rank_elems[static_cast<std::size_t>(r)];
        accels_.push_back(std::make_unique<accel::PipelineAccelerator>(
            bundle_->mesh, dims_, elems));
        accels_.back()->set_tracer(tracer_.get(),
                                   "accel.r" + std::to_string(r), r);
        if (pool != nullptr) {
          accels_.back()->set_cg_pool(
              pool, {affinity[static_cast<std::size_t>(r) % affinity.size()]});
        }
        accels_.back()->set_fault_plan(cfg_.faults);
        pds_[static_cast<std::size_t>(r)]->attach_accelerator(
            accels_.back().get());
      }
    }
  }

  if (cfg_.physics) {
    physics_ = std::make_unique<phys::PhysicsDriver>(bundle_->mesh, dims_,
                                                     cfg_.physics_cfg);
  }
  if (cfg_.monitor) {
    monitor_ = std::make_unique<homme::StateMonitor>(dims_);
  }
  init_ckpt_writer();
}

void Session::init_ckpt_writer() {
  if (cfg_.nranks == 1 && cfg_.ckpt_full_interval > 0 &&
      !cfg_.checkpoint_base.empty()) {
    ckpt_writer_ = std::make_unique<homme::AsyncCheckpointWriter>(
        cfg_.checkpoint_base, cfg_.ckpt_full_interval);
  }
}

Session::Session(const Session& parent, const std::string& checkpoint_base,
                 ForkTag)
    : cfg_(parent.cfg_),
      bundle_(parent.bundle_),
      dims_(parent.dims_),
      step_count_(parent.step_count_) {
  // fork() has already rejected parallel parents. A child never inherits
  // the parent's checkpoint chain — same base would mean both sessions
  // overwrite one file set.
  if (checkpoint_base.empty()) {
    cfg_.checkpoint_freq = 0;
    cfg_.checkpoint_base.clear();
    cfg_.ckpt_full_interval = 0;
  } else {
    cfg_.checkpoint_base = checkpoint_base;
  }
  tracer_ = std::make_unique<obs::Tracer>(cfg_.trace_domain);
  tracer_->enable(cfg_.trace);

  homme::DycoreConfig dcfg = cfg_.dycore_config();
  dcfg.dt = parent.dycore_->dt();  // resolved values, not the auto markers
  dcfg.nu = parent.dycore_->nu();
  dycore_ = std::make_unique<homme::Dycore>(bundle_->mesh, dims_, dcfg);
  dycore_->set_tracer(tracer_.get());
  dycore_->set_step_count(step_count_);
  // The fork itself: alias every chunk of the parent's state. The child's
  // (or parent's) first write to a field un-shares just that chunk.
  state_ = parent.state_;

  if (cfg_.backend == SessionConfig::Backend::kPipeline) {
    accels_.push_back(std::make_unique<accel::PipelineAccelerator>(
        bundle_->mesh, dims_));
    accels_[0]->set_tracer(tracer_.get(), "accel");
    // The child shares the parent's pool handle (per-group locks make
    // that safe) or builds its own private pool, exactly like build().
    if (cfg_.cg_pool != nullptr) {
      accels_[0]->set_cg_pool(cfg_.cg_pool, cfg_.cg_affinity);
    } else if (cfg_.core_groups > 1) {
      accels_[0]->use_core_groups(cfg_.core_groups);
    }
    accels_[0]->set_fault_plan(cfg_.faults);
    dycore_->attach_accelerator(accels_[0].get());
  }
  if (cfg_.physics) {
    physics_ = std::make_unique<phys::PhysicsDriver>(bundle_->mesh, dims_,
                                                     cfg_.physics_cfg);
  }
  if (cfg_.monitor) {
    monitor_ = std::make_unique<homme::StateMonitor>(dims_);
  }
  init_ckpt_writer();
}

std::unique_ptr<Session> Session::fork(
    const std::string& checkpoint_base) const {
  if (cfg_.nranks != 1) {
    throw ConfigError("Session::fork: only sequential sessions "
                      "(nranks == 1) can fork");
  }
  return std::unique_ptr<Session>(
      new Session(*this, checkpoint_base, ForkTag{}));
}

double Session::dt() const {
  return cfg_.nranks == 1 ? dycore_->dt() : pds_[0]->dt();
}

void Session::step_dynamics() {
  if (cfg_.nranks == 1) {
    dycore_->step(state_);
    return;
  }
  cluster_->run([&](net::Rank& r) {
    const auto i = static_cast<std::size_t>(r.rank());
    pds_[i]->step(r, locals_[i]);
    if (monitor_ != nullptr) {
      if (auto why = monitor_->check(locals_[i])) {
        throw ModelBlowup("rank " + std::to_string(r.rank()) + ": " + *why);
      }
    }
  });
}

void Session::check_monitor() {
  if (monitor_ == nullptr || cfg_.nranks > 1) return;  // parallel: per rank
  if (auto why = monitor_->check(state_)) throw ModelBlowup(*why);
}

void Session::step() {
  step_dynamics();
  if (physics_ != nullptr) {
    const double pdt = cfg_.physics_dt > 0.0 ? cfg_.physics_dt : dt();
    phys_stats_ = physics_->step(state_, pdt);
  }
  ++step_count_;
  check_monitor();
}

void Session::run(int n) {
  for (int i = 0; i < n; ++i) {
    step();
    maybe_checkpoint();
  }
}

bool Session::checkpoint_now() {
  if (cfg_.checkpoint_base.empty()) return false;
  if (ckpt_writer_ != nullptr) {
    save();  // async delta chain; serialization off this thread
  } else {
    save(cfg_.checkpoint_base);
  }
  return true;
}

bool Session::maybe_checkpoint() {
  if (cfg_.checkpoint_freq <= 0 || step_count_ % cfg_.checkpoint_freq != 0) {
    return false;
  }
  return checkpoint_now();
}

bool Session::can_resume() const {
  if (cfg_.checkpoint_base.empty()) return false;
  const std::string path =
      ckpt_writer_ != nullptr
          ? cfg_.checkpoint_base + ".full"
          : homme::checkpoint_rank_path(cfg_.checkpoint_base, 0);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::fclose(f);
  return true;
}

bool Session::try_resume() {
  if (!can_resume()) return false;
  if (ckpt_writer_ != nullptr) {
    restore();
  } else {
    restore(cfg_.checkpoint_base);
  }
  return true;
}

homme::Diagnostics Session::diagnose() {
  if (cfg_.nranks == 1) return dycore_->diagnose(state_);
  homme::Diagnostics out;
  std::mutex mu;
  cluster_->run([&](net::Rank& r) {
    const auto i = static_cast<std::size_t>(r.rank());
    auto d = pds_[i]->diagnose(r, locals_[i]);
    if (r.rank() == 0) {
      std::lock_guard<std::mutex> lock(mu);
      out = d;
    }
  });
  return out;
}

homme::State Session::assemble() const {
  homme::State global(static_cast<std::size_t>(bundle_->mesh.nelem()),
                      homme::ElementState(dims_));
  for (int r = 0; r < cfg_.nranks; ++r) {
    homme::scatter_local(bundle_->partition, r,
                         locals_[static_cast<std::size_t>(r)], global);
  }
  return global;
}

homme::State Session::state() const {
  return cfg_.nranks == 1 ? state_ : assemble();
}

void Session::set_state(const homme::State& global) {
  if (global.size() != static_cast<std::size_t>(bundle_->mesh.nelem())) {
    throw ConfigError("Session::set_state: state has " +
                      std::to_string(global.size()) + " elements, mesh has " +
                      std::to_string(bundle_->mesh.nelem()));
  }
  if (cfg_.nranks == 1) {
    state_ = global;
    return;
  }
  for (int r = 0; r < cfg_.nranks; ++r) {
    locals_[static_cast<std::size_t>(r)] =
        homme::gather_local(bundle_->partition, r, global);
  }
}

homme::CheckpointInfo Session::checkpoint_info() const {
  homme::CheckpointInfo info;
  info.nelem = state_.size();
  info.dims = dims_;
  info.config = cfg_.dycore_config();
  info.config.dt = dycore_->dt();  // the resolved (auto-picked) values
  info.config.nu = dycore_->nu();
  info.step_count = step_count_;
  info.rng_seed = cfg_.faults != nullptr ? cfg_.faults->seed() : 0;
  return info;
}

void Session::save(const std::string& base) {
  if (cfg_.nranks == 1) {
    homme::save_checkpoint(homme::checkpoint_rank_path(base, 0),
                           checkpoint_info(), state_);
    return;
  }
  cluster_->run([&](net::Rank& r) {
    const auto i = static_cast<std::size_t>(r.rank());
    pds_[i]->save(r, locals_[i], base,
                  cfg_.faults != nullptr ? cfg_.faults->seed() : 0);
  });
}

void Session::adopt_restored(const homme::CheckpointInfo& info,
                             homme::State&& s, const std::string& what) {
  if (info.dims.nlev != dims_.nlev || info.dims.qsize != dims_.qsize ||
      info.dims.moist != dims_.moist) {
    throw homme::CheckpointError(
        what + ": dims mismatch (file nlev=" +
        std::to_string(info.dims.nlev) + " qsize=" +
        std::to_string(info.dims.qsize) + ", session nlev=" +
        std::to_string(dims_.nlev) + " qsize=" +
        std::to_string(dims_.qsize) + ")");
  }
  if (info.nelem != state_.size()) {
    throw homme::CheckpointError(
        what + ": element count mismatch (file has " +
        std::to_string(info.nelem) + ", session owns " +
        std::to_string(state_.size()) + ")");
  }
  if (info.config.dt != dycore_->dt() || info.config.nu != dycore_->nu() ||
      info.config.remap_freq != cfg_.remap_freq) {
    throw homme::CheckpointError(
        what + ": config mismatch (file dt=" +
        std::to_string(info.config.dt) + " nu=" +
        std::to_string(info.config.nu) + " remap_freq=" +
        std::to_string(info.config.remap_freq) + ")");
  }
  state_ = std::move(s);
  step_count_ = static_cast<int>(info.step_count);
  dycore_->set_step_count(step_count_);
}

void Session::restore(const std::string& base) {
  if (cfg_.nranks == 1) {
    homme::State loaded;
    const homme::CheckpointInfo info = homme::load_checkpoint(
        homme::checkpoint_rank_path(base, 0), loaded);
    adopt_restored(info, std::move(loaded), "Session::restore");
    return;
  }
  cluster_->run([&](net::Rank& r) {
    const auto i = static_cast<std::size_t>(r.rank());
    pds_[i]->restore(r, locals_[i], base);
  });
  step_count_ = pds_[0]->step_count();
}

void Session::save() {
  if (ckpt_writer_ == nullptr) {
    throw ConfigError("Session::save(): no delta-checkpoint writer — "
                      "configure with_delta_checkpoints() on a sequential "
                      "session");
  }
  ckpt_writer_->save(checkpoint_info(), state_);
}

void Session::restore() {
  if (ckpt_writer_ == nullptr) {
    throw ConfigError("Session::restore(): no delta-checkpoint writer — "
                      "configure with_delta_checkpoints() on a sequential "
                      "session");
  }
  ckpt_writer_->drain();  // the chain on disk must include every save()
  homme::State loaded;
  const homme::CheckpointInfo info =
      homme::DeltaCheckpointWriter::restore_chain(ckpt_writer_->base(),
                                                  loaded);
  adopt_restored(info, std::move(loaded), "Session::restore");
}

homme::StoreStats Session::store_stats() const {
  if (cfg_.nranks == 1) return state_.stats();
  homme::StoreStats total;
  for (const auto& local : locals_) total += local.stats();
  return total;
}

homme::AsyncCheckpointWriter::Stats Session::checkpoint_stats() const {
  return ckpt_writer_ != nullptr ? ckpt_writer_->stats()
                                 : homme::AsyncCheckpointWriter::Stats{};
}

int Session::fallbacks() const {
  int n = 0;
  for (const auto& a : accels_) n += a->fallbacks();
  return n;
}

homme::StepAccelerator* Session::accelerator(int rank) const {
  const auto i = static_cast<std::size_t>(rank);
  return i < accels_.size() ? accels_[i].get() : nullptr;
}

}  // namespace model
