#pragma once

#include <vector>

#include "mesh/cubed_sphere.hpp"

/// \file mpas_core.hpp
/// A miniature MPAS-style dynamical core: finite-volume transport on an
/// unstructured polygonal mesh with explicit cell/edge connectivity
/// arrays and RK3 sub-stepping. The indirect addressing and the 3-sweep
/// time integration are the per-cell cost and communication analog of the
/// MPAS column in Table 3.

namespace baselines {

class MpasCore {
 public:
  /// Build the unstructured mesh from a cubed sphere's element graph
  /// (cells = elements, edges = shared element faces) — a Voronoi-like
  /// polygonal tessellation with everything accessed through index
  /// arrays, as MPAS does.
  explicit MpasCore(const mesh::CubedSphere& m);

  int ncells() const { return static_cast<int>(area_.size()); }
  int nedges() const { return static_cast<int>(edge_cell1_.size()); }

  double& q(int cell) { return q_[static_cast<std::size_t>(cell)]; }
  double q(int cell) const { return q_[static_cast<std::size_t>(cell)]; }

  /// Set edge normal velocities from a solid-body rotation about the z
  /// axis with angular rate \p omega (1/s).
  void set_solid_body_flow(double omega);

  /// One RK3 transport step (three upwind sweeps over all edges).
  void step(double dt);

  double total_mass() const;
  double min_value() const;

 private:
  void flux_sweep(const std::vector<double>& state,
                  std::vector<double>& tend) const;

  // Cell data.
  std::vector<double> area_;
  std::vector<double> q_;
  std::vector<std::vector<int>> cell_edges_;
  // Edge data (indirect addressing, MPAS-style).
  std::vector<int> edge_cell1_, edge_cell2_;
  std::vector<double> edge_length_;
  std::vector<double> edge_normal_vel_;  ///< positive: cell1 -> cell2
  std::vector<mesh::Vec3> centers_;      ///< cell centroids
};

}  // namespace baselines
