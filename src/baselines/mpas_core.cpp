#include "baselines/mpas_core.hpp"

#include <algorithm>
#include <cmath>
#include <map>

namespace baselines {

MpasCore::MpasCore(const mesh::CubedSphere& m) {
  const int n = m.nelem();
  area_.resize(static_cast<std::size_t>(n), 0.0);
  q_.assign(static_cast<std::size_t>(n), 0.0);
  cell_edges_.resize(static_cast<std::size_t>(n));
  for (int e = 0; e < n; ++e) {
    for (double w : m.geom(e).mass) {
      area_[static_cast<std::size_t>(e)] += w;
    }
  }
  // Edges from the element adjacency graph (each pair once).
  std::map<std::pair<int, int>, int> seen;
  for (int c = 0; c < n; ++c) {
    for (int nb : m.edge_neighbors(c)) {
      const auto key = std::minmax(c, nb);
      if (seen.count({key.first, key.second})) continue;
      const int edge = static_cast<int>(edge_cell1_.size());
      seen[{key.first, key.second}] = edge;
      edge_cell1_.push_back(key.first);
      edge_cell2_.push_back(key.second);
      // Edge length ~ sqrt of the mean cell area (quasi-uniform mesh).
      edge_length_.push_back(std::sqrt(
          0.5 * (area_[static_cast<std::size_t>(key.first)] +
                 area_[static_cast<std::size_t>(key.second)])));
      cell_edges_[static_cast<std::size_t>(key.first)].push_back(edge);
      cell_edges_[static_cast<std::size_t>(key.second)].push_back(edge);
    }
  }
  edge_normal_vel_.assign(edge_cell1_.size(), 0.0);

  // Cell centers for flow setup.
  centers_.resize(static_cast<std::size_t>(n));
  for (int c = 0; c < n; ++c) {
    mesh::Vec3 sum{0, 0, 0};
    for (const auto& p : m.geom(c).pos) {
      sum[0] += p[0];
      sum[1] += p[1];
      sum[2] += p[2];
    }
    for (auto& x : sum) x /= mesh::kNpp;
    centers_[static_cast<std::size_t>(c)] = sum;
  }
}

void MpasCore::set_solid_body_flow(double omega) {
  for (std::size_t e = 0; e < edge_cell1_.size(); ++e) {
    const auto& p1 = centers_[static_cast<std::size_t>(edge_cell1_[e])];
    const auto& p2 = centers_[static_cast<std::size_t>(edge_cell2_[e])];
    const mesh::Vec3 mid = {0.5 * (p1[0] + p2[0]), 0.5 * (p1[1] + p2[1]),
                            0.5 * (p1[2] + p2[2])};
    // Velocity of solid-body rotation about z at the edge midpoint.
    const mesh::Vec3 vel = {-omega * mid[1], omega * mid[0], 0.0};
    // Normal direction: from cell1 center to cell2 center.
    mesh::Vec3 nrm = {p2[0] - p1[0], p2[1] - p1[1], p2[2] - p1[2]};
    const double len = std::sqrt(mesh::dot(nrm, nrm));
    if (len > 0) {
      for (auto& x : nrm) x /= len;
    }
    edge_normal_vel_[e] = mesh::dot(vel, nrm);
  }
}

void MpasCore::flux_sweep(const std::vector<double>& state,
                          std::vector<double>& tend) const {
  std::fill(tend.begin(), tend.end(), 0.0);
  for (std::size_t e = 0; e < edge_cell1_.size(); ++e) {
    const int c1 = edge_cell1_[e];
    const int c2 = edge_cell2_[e];
    const double v = edge_normal_vel_[e];
    // First-order upwind flux through the edge.
    const double upwind =
        v >= 0.0 ? state[static_cast<std::size_t>(c1)]
                 : state[static_cast<std::size_t>(c2)];
    const double f = v * upwind * edge_length_[e];
    tend[static_cast<std::size_t>(c1)] -= f / area_[static_cast<std::size_t>(c1)];
    tend[static_cast<std::size_t>(c2)] += f / area_[static_cast<std::size_t>(c2)];
  }
}

void MpasCore::step(double dt) {
  const std::size_t n = q_.size();
  std::vector<double> k(n), s1(n), s2(n);
  // RK3 (Shu-Osher), three sweeps as MPAS performs.
  flux_sweep(q_, k);
  for (std::size_t i = 0; i < n; ++i) s1[i] = q_[i] + dt * k[i];
  flux_sweep(s1, k);
  for (std::size_t i = 0; i < n; ++i) {
    s2[i] = 0.75 * q_[i] + 0.25 * (s1[i] + dt * k[i]);
  }
  flux_sweep(s2, k);
  for (std::size_t i = 0; i < n; ++i) {
    q_[i] = q_[i] / 3.0 + 2.0 / 3.0 * (s2[i] + dt * k[i]);
  }
}

double MpasCore::total_mass() const {
  double s = 0.0;
  for (std::size_t i = 0; i < q_.size(); ++i) s += q_[i] * area_[i];
  return s;
}

double MpasCore::min_value() const {
  return *std::min_element(q_.begin(), q_.end());
}

}  // namespace baselines
