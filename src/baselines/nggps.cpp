#include "baselines/nggps.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "accel/packed.hpp"
#include "accel/rhs_acc.hpp"
#include "baselines/fv_core.hpp"
#include "baselines/mpas_core.hpp"
#include "net/network_model.hpp"

namespace baselines {

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Best-of-N wall time of a callable: robust to transient host load,
/// standard micro-benchmark practice.
template <typename F>
double best_of(int trials, F&& body) {
  double best = 1e300;
  for (int t = 0; t < trials; ++t) {
    const double t0 = now_seconds();
    body();
    best = std::min(best, now_seconds() - t0);
  }
  return best;
}

}  // namespace

DycoreCosts measure_dycore_costs(int nlev) {
  DycoreCosts c;

  // All three are measured on the same host, so their *ratios* carry the
  // information; each raw measurement is then scaled by the core's
  // structural multiplier to a full dynamics step per column-level:
  //   HOMME: one RHS evaluation measured; x4.5 for the 3 RK stages plus
  //          hyperviscosity and the remap share.
  //   FV3:   one field, one level measured (incl. polar filter); x7 for
  //          ~5 prognostic fields and the acoustic/vertical substepping
  //          of a lean FV scheme.
  //   MPAS:  one field measured (3 RK sweeps included); x15 for 5 fields
  //          plus the C-grid reconstruction and tangential-velocity
  //          extras of the full solver.

  // HOMME (spectral element): the RHS kernel over a packed workset.
  {
    homme::Dims d;
    d.nlev = nlev;
    d.qsize = 0;
    auto m = mesh::CubedSphere::build(2, mesh::kEarthRadius);
    auto p = accel::PackedElems::synthetic(m, d, 24);
    const accel::RhsAccConfig cfg{};
    const int reps = 4;
    const double dtm =
        best_of(3, [&] { for (int r = 0; r < reps; ++r) accel::rhs_ref(p, cfg); });
    c.homme = 4.5 * dtm / (reps * 24.0 * mesh::kNpp * d.nlev);
  }

  // FV3-style: dimension-split PPM advection plus polar filtering.
  {
    FvCore fv(96, 192);
    for (int i = 0; i < fv.nlat(); ++i) {
      for (int j = 0; j < fv.nlon(); ++j) {
        fv.q(i, j) = std::sin(0.1 * i) + std::cos(0.07 * j);
      }
    }
    fv.set_flow(0.4, 0.3);
    const int reps = 10;
    const double dtm = best_of(3, [&] { for (int r = 0; r < reps; ++r) fv.step(); });
    c.fv3 = 7.0 * dtm / (reps * static_cast<double>(fv.nlat()) * fv.nlon());
  }

  // MPAS-style: unstructured RK3 transport with indirect addressing.
  {
    auto m = mesh::CubedSphere::build(8, mesh::kEarthRadius);
    MpasCore mpas(m);
    for (int cell = 0; cell < mpas.ncells(); ++cell) {
      mpas.q(cell) = 1.0 + 0.3 * std::sin(0.05 * cell);
    }
    mpas.set_solid_body_flow(1.0e-6);
    const int reps = 20;
    const double dtm =
        best_of(3, [&] { for (int r = 0; r < reps; ++r) mpas.step(100.0); });
    c.mpas = 15.0 * dtm / (reps * static_cast<double>(mpas.ncells()));
  }
  return c;
}

std::vector<NggpsRow> run_nggps(const DycoreCosts& costs) {
  net::NetworkModel network;

  struct Workload {
    std::string name;
    double km;
    double forecast_s;
    long long columns;  ///< global grid columns at this resolution
  };
  // 12.5 km ~ ne256 (6.3M columns); 3 km ~ ne1024 (100M columns).
  const Workload workloads[2] = {
      {"12.5km/2h", 12.5, 2.0 * 3600.0, 6LL * 256 * 256 * 16},
      {"3km/30min", 3.0, 0.5 * 3600.0, 6LL * 1024 * 1024 * 16},
  };

  struct Entry {
    std::string name;
    long long procs12, procs3;
    double paper12, paper3;
    double percol;
    double dt_factor;  ///< stable dt relative to the SE core
  };
  const Entry entries[3] = {
      {"HOMME (this work)", 131072, 131072, 2.712, 14.379, costs.homme, 1.0},
      {"FV3", 110592, 110592, 3.56, 30.31, costs.fv3, 1.5},
      {"MPAS", 96000, 131072, 7.56, 64.80, costs.mpas, 1.2},
  };

  // Base time step of the SE core at 12.5 km (CAM-SE practice scaled).
  auto se_dt = [](double km) { return 35.0 * km / 12.5; };
  constexpr double kLevels = 128.0;

  // Host -> core-group compute scale, one factor for all three cores:
  // chosen so HOMME's 12.5 km step is ~70% compute (the paper attributes
  // ~23% of large runs to communication, section 7.6).
  const double homme_steps12 = workloads[0].forecast_s / se_dt(12.5);
  const double homme_local12 =
      static_cast<double>(workloads[0].columns) / 131072.0;
  const double t_step_paper = 2.712 / homme_steps12;
  const double cg_scale =
      0.7 * t_step_paper / (homme_local12 * kLevels * costs.homme);

  std::vector<NggpsRow> rows;
  double anchor = 1.0;
  for (int w = 0; w < 2; ++w) {
    const auto& wl = workloads[w];
    for (const auto& en : entries) {
      const long long procs = (w == 0) ? en.procs12 : en.procs3;
      const double dt = se_dt(wl.km) * en.dt_factor;
      const double steps = wl.forecast_s / dt;
      const double local =
          static_cast<double>(wl.columns) / static_cast<double>(procs);
      // Core-group utilization: few columns per process leave the 64
      // CPEs underfed (the paper: "in high-resolution cases, we have
      // enough compute to assign to the 65 cores").
      const double utilization = local / (local + 100.0);
      const double compute = local * kLevels * en.percol * cg_scale /
                             utilization;

      // Communication per step, per core's halo pattern.
      const double halo_bytes = 8.0 * 128.0 *  // doubles x levels
                                (4.0 * std::sqrt(local) + 4.0);
      double comm = 0.0;
      if (en.name.rfind("HOMME", 0) == 0) {
        // Overlapped (section 7.6): latency remainder only.
        comm = 8.0e-6 +
               std::max(0.0, network.halo_exchange_seconds(
                                 8, static_cast<std::size_t>(halo_bytes), 0.3) -
                                 0.8 * compute);
      } else if (en.name == "FV3") {
        // 4-neighbor halo, no overlap, plus the polar filter's
        // row-communicator reduction every step.
        comm = network.halo_exchange_seconds(
                   4, static_cast<std::size_t>(1.5 * halo_bytes), 0.3) +
               network.allreduce_seconds(static_cast<int>(procs / 64), 2048);
      } else {
        // MPAS: 6 neighbors, two-deep halo, exchanged on all 3 RK sweeps.
        comm = 3.0 * network.halo_exchange_seconds(
                         6, static_cast<std::size_t>(2.0 * halo_bytes), 0.3);
      }

      NggpsRow row;
      row.workload = wl.name;
      row.dycore = en.name;
      row.procs = procs;
      row.runtime_s = steps * (compute + comm);
      row.paper_s = (w == 0) ? en.paper12 : en.paper3;
      rows.push_back(row);
    }
  }

  // Normalize once: HOMME @ 12.5 km = 2.712 s (the paper's entry).
  anchor = 2.712 / rows[0].runtime_s;
  for (auto& r : rows) r.runtime_s *= anchor;
  return rows;
}

}  // namespace baselines
