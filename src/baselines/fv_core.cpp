#include "baselines/fv_core.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace baselines {

namespace {

/// Monotonized-central slope limiter.
double limited_slope(double qm, double q0, double qp) {
  const double dc = 0.5 * (qp - qm);
  const double dl = 2.0 * (q0 - qm);
  const double dr = 2.0 * (qp - q0);
  if (dl * dr <= 0.0) return 0.0;
  const double mag = std::min({std::abs(dc), std::abs(dl), std::abs(dr)});
  return std::copysign(mag, dc);
}

}  // namespace

void ppm_advect_row(std::vector<double>& row, double c) {
  assert(std::abs(c) <= 1.0);
  const int n = static_cast<int>(row.size());
  std::vector<double> flux(static_cast<std::size_t>(n));
  // Flux through the right face of cell i over the step, PPM-lite
  // (limited parabola collapsed to the integrated upwind reconstruction).
  for (int i = 0; i < n; ++i) {
    if (c >= 0.0) {
      const int im = (i + n - 1) % n;
      const int ip = (i + 1) % n;
      const double s = limited_slope(row[static_cast<std::size_t>(im)],
                                     row[static_cast<std::size_t>(i)],
                                     row[static_cast<std::size_t>(ip)]);
      flux[static_cast<std::size_t>(i)] =
          c * (row[static_cast<std::size_t>(i)] + 0.5 * s * (1.0 - c));
    } else {
      const int ip = (i + 1) % n;
      const int ipp = (i + 2) % n;
      const double s = limited_slope(row[static_cast<std::size_t>(i)],
                                     row[static_cast<std::size_t>(ip)],
                                     row[static_cast<std::size_t>(ipp)]);
      flux[static_cast<std::size_t>(i)] =
          c * (row[static_cast<std::size_t>(ip)] - 0.5 * s * (1.0 + c));
    }
  }
  for (int i = 0; i < n; ++i) {
    const int im = (i + n - 1) % n;
    row[static_cast<std::size_t>(i)] +=
        flux[static_cast<std::size_t>(im)] - flux[static_cast<std::size_t>(i)];
  }
}

FvCore::FvCore(int nlat, int nlon)
    : nlat_(nlat), nlon_(nlon),
      q_(static_cast<std::size_t>(nlat) * nlon, 0.0),
      scratch_(static_cast<std::size_t>(std::max(nlat, nlon)), 0.0) {}

void FvCore::advect_x(double c) {
  std::vector<double> row(static_cast<std::size_t>(nlon_));
  for (int i = 0; i < nlat_; ++i) {
    for (int j = 0; j < nlon_; ++j) row[static_cast<std::size_t>(j)] = q(i, j);
    ppm_advect_row(row, c);
    for (int j = 0; j < nlon_; ++j) q(i, j) = row[static_cast<std::size_t>(j)];
  }
}

void FvCore::advect_y(double c) {
  // Treat latitude columns as periodic via a mirrored extension
  // (conservative reflecting boundary).
  std::vector<double> col(static_cast<std::size_t>(2 * nlat_));
  for (int j = 0; j < nlon_; ++j) {
    for (int i = 0; i < nlat_; ++i) {
      col[static_cast<std::size_t>(i)] = q(i, j);
      col[static_cast<std::size_t>(2 * nlat_ - 1 - i)] = q(i, j);
    }
    ppm_advect_row(col, c);
    for (int i = 0; i < nlat_; ++i) {
      q(i, j) = 0.5 * (col[static_cast<std::size_t>(i)] +
                       col[static_cast<std::size_t>(2 * nlat_ - 1 - i)]);
    }
  }
}

void FvCore::polar_filter() {
  // Zonal 1-2-1 smoothing over the polar bands (top/bottom 10%), the
  // cost analog of FV3's polar Fourier filtering.
  const int band = std::max(1, nlat_ / 10);
  auto smooth_row = [&](int i) {
    std::vector<double> row(static_cast<std::size_t>(nlon_));
    for (int j = 0; j < nlon_; ++j) {
      const int jm = (j + nlon_ - 1) % nlon_;
      const int jp = (j + 1) % nlon_;
      row[static_cast<std::size_t>(j)] =
          0.25 * q(i, jm) + 0.5 * q(i, j) + 0.25 * q(i, jp);
    }
    for (int j = 0; j < nlon_; ++j) q(i, j) = row[static_cast<std::size_t>(j)];
  };
  for (int i = 0; i < band; ++i) {
    smooth_row(i);
    smooth_row(nlat_ - 1 - i);
  }
}

void FvCore::step() {
  advect_x(cx_);
  advect_y(cy_);
  polar_filter();
}

double FvCore::total_mass() const {
  double s = 0.0;
  for (double v : q_) s += v;
  return s;
}

double FvCore::min_value() const {
  return *std::min_element(q_.begin(), q_.end());
}

double FvCore::max_value() const {
  return *std::max_element(q_.begin(), q_.end());
}

}  // namespace baselines
