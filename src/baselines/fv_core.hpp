#pragma once

#include <vector>

/// \file fv_core.hpp
/// A miniature FV3-style dynamical core: dimension-split finite-volume
/// advection with PPM reconstruction on a regular latitude-longitude
/// patch. Serves as the per-cell cost and algorithmic stand-in for the
/// GFDL FV3 column of Table 3 (the NGGPS comparison): cheap per cell,
/// regular memory access, but a narrower stability limit near the poles
/// (modeled by the polar-filter pass).

namespace baselines {

class FvCore {
 public:
  FvCore(int nlat, int nlon);

  int nlat() const { return nlat_; }
  int nlon() const { return nlon_; }
  double& q(int i, int j) { return q_[idx(i, j)]; }
  double q(int i, int j) const { return q_[idx(i, j)]; }

  /// Set a uniform flow (cells per step in each direction; |c| < 1).
  void set_flow(double cx, double cy) {
    cx_ = cx;
    cy_ = cy;
  }

  /// One dimension-split PPM advection step (periodic in longitude,
  /// reflecting at the latitude boundaries), plus a polar smoothing pass
  /// over the top/bottom bands (the cost analog of FV3's polar filter).
  void step();

  double total_mass() const;
  double min_value() const;
  double max_value() const;

 private:
  std::size_t idx(int i, int j) const {
    return static_cast<std::size_t>(i) * nlon_ + j;
  }
  void advect_x(double c);
  void advect_y(double c);
  void polar_filter();

  int nlat_, nlon_;
  double cx_ = 0.0, cy_ = 0.0;
  std::vector<double> q_, scratch_;
};

/// Monotone PPM face reconstruction + upwind flux for one periodic row;
/// exposed for testing. \p c is the Courant number (|c| <= 1).
void ppm_advect_row(std::vector<double>& row, double c);

}  // namespace baselines
