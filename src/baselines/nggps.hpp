#pragma once

#include <string>
#include <vector>

/// \file nggps.hpp
/// Reproduction harness for Table 3: the NGGPS-style comparison of the
/// redesigned HOMME against FV3- and MPAS-style dynamical cores on the
/// 12.5 km / 2-hour and 3 km / 30-minute prediction workloads.
///
/// Methodology (documented in EXPERIMENTS.md): per-column step costs of
/// the three minis are *measured on the same host* (so their ratios are
/// meaningful), time steps follow each core's stability character
/// (FV3 runs a longer dt; MPAS's RK3 needs three sweeps), communication
/// comes from the analytic TaihuLight network model with each core's
/// halo pattern (HOMME overlaps per section 7.6; FV3 pays its polar
/// filter; MPAS pays two-deep halos on every RK sweep), and the whole
/// table is normalized once so that HOMME's 12.5 km entry equals the
/// paper's 2.712 s.

namespace baselines {

struct NggpsRow {
  std::string workload;  ///< "12.5km/2h" or "3km/30min"
  std::string dycore;    ///< "HOMME (this work)", "FV3", "MPAS"
  long long procs = 0;
  double runtime_s = 0.0;
  double paper_s = 0.0;
};

/// Host-measured per-column per-step costs (seconds) of the three minis.
struct DycoreCosts {
  double homme = 0.0;
  double fv3 = 0.0;
  double mpas = 0.0;
};

/// Measure the per-column costs by running each mini on the host.
/// \p nlev sets the HOMME mini's vertical levels (the Table 3 runs use
/// the "nggps" scenario's default of 16).
DycoreCosts measure_dycore_costs(int nlev = 16);

/// Produce the six Table 3 rows.
std::vector<NggpsRow> run_nggps(const DycoreCosts& costs);

}  // namespace baselines
