#pragma once

#include <vector>

/// \file climatology.hpp
/// The Figure 4 experiment: "30-year climatological atmospheric surface
/// temperature simulated by CESM on Intel (control run) and CESM on
/// Sunway TaihuLight (test run)" — the paper validates the port by
/// showing the two climatologies are statistically identical.
///
/// The cross-platform difference between the ported and original code is
/// floating-point reassociation (our measured register-scan vs
/// sequential-scan drift is O(1e-9) relative; see the accel tests). We
/// reproduce the experiment by running the same model twice — the test
/// run perturbed at that reassociation magnitude — and comparing the
/// time-mean lowest-level temperature fields: mean bias, RMSE and
/// pattern correlation.

namespace validation {

struct ClimatologyConfig {
  int ne = 4;
  int nlev = 8;
  int steps = 120;           ///< "climatology" accumulation window
  int spinup = 20;
  double perturbation = 1e-9; ///< relative, the measured platform drift
  bool physics_on = true;
};

struct ClimatologyStats {
  double mean_control = 0.0;   ///< area-weighted mean surface T, K
  double mean_test = 0.0;
  double rmse = 0.0;           ///< K
  double pattern_correlation = 0.0;
  double max_abs_diff = 0.0;   ///< K
  std::vector<double> control_field;  ///< [elem*16] time-mean surface T
  std::vector<double> test_field;
};

ClimatologyStats climatology_compare(const ClimatologyConfig& cfg = {});

}  // namespace validation
