#include "validation/climatology.hpp"

#include <cmath>

#include "homme/state.hpp"

#include "homme/driver.hpp"
#include "homme/init.hpp"
#include "physics/driver.hpp"

namespace validation {

using homme::fidx;
using mesh::kNpp;

namespace {

/// Run the model and accumulate the time-mean lowest-level temperature.
std::vector<double> run_once(const mesh::CubedSphere& m,
                             const homme::Dims& d,
                             const ClimatologyConfig& cfg,
                             double perturbation) {
  auto s = homme::baroclinic(m, d, 25.0, 290.0, 4.0);
  // Tracer 0 is specific humidity for the physics suite: a realistic
  // moist-boundary-layer profile (kg/kg), not the advection test bells.
  for (auto& es : s) {
    auto q = es.q_mut(0, d);
    for (int lev = 0; lev < d.nlev; ++lev) {
      const double sigma = (lev + 0.5) / d.nlev;
      for (int k = 0; k < kNpp; ++k) {
        q[fidx(lev, k)] = 0.012 * sigma * sigma * sigma * es.dp[fidx(lev, k)];
      }
    }
  }
  if (perturbation != 0.0) {
    // Deterministic pseudo-random relative perturbation at the measured
    // cross-platform reassociation magnitude.
    unsigned seed = 77;
    for (auto& es : s) {
      for (double& t : es.T.mutable_span()) {
        seed = seed * 1664525u + 1013904223u;
        t *= 1.0 + perturbation *
                       (static_cast<double>(seed % 2000) / 1000.0 - 1.0);
      }
    }
  }

  homme::Dycore dycore(m, d, homme::DycoreConfig{});
  phys::PhysicsConfig pcfg;
  pcfg.radiation = pcfg.convection = pcfg.condensation = pcfg.surface_pbl =
      cfg.physics_on;
  phys::PhysicsDriver physics(m, d, pcfg);

  std::vector<double> mean(static_cast<std::size_t>(m.nelem()) * kNpp, 0.0);
  int samples = 0;
  for (int step = 0; step < cfg.steps; ++step) {
    dycore.step(s);
    if (cfg.physics_on) physics.step(s, dycore.dt());
    if (step < cfg.spinup) continue;
    for (int e = 0; e < m.nelem(); ++e) {
      for (int k = 0; k < kNpp; ++k) {
        mean[static_cast<std::size_t>(e * kNpp + k)] +=
            s[static_cast<std::size_t>(e)].T[fidx(d.nlev - 1, k)];
      }
    }
    ++samples;
  }
  for (auto& x : mean) x /= samples;
  return mean;
}

}  // namespace

ClimatologyStats climatology_compare(const ClimatologyConfig& cfg) {
  auto m = mesh::CubedSphere::build(cfg.ne, mesh::kEarthRadius);
  homme::Dims d;
  d.nlev = cfg.nlev;
  d.qsize = 1;

  ClimatologyStats out;
  out.control_field = run_once(m, d, cfg, 0.0);
  out.test_field = run_once(m, d, cfg, cfg.perturbation);

  // Area-weighted statistics.
  double area = 0.0, mc = 0.0, mt = 0.0;
  for (int e = 0; e < m.nelem(); ++e) {
    const auto& g = m.geom(e);
    for (int k = 0; k < kNpp; ++k) {
      const double w = g.mass[static_cast<std::size_t>(k)];
      area += w;
      mc += w * out.control_field[static_cast<std::size_t>(e * kNpp + k)];
      mt += w * out.test_field[static_cast<std::size_t>(e * kNpp + k)];
    }
  }
  out.mean_control = mc / area;
  out.mean_test = mt / area;

  double se = 0.0, cov = 0.0, var_c = 0.0, var_t = 0.0, maxd = 0.0;
  for (int e = 0; e < m.nelem(); ++e) {
    const auto& g = m.geom(e);
    for (int k = 0; k < kNpp; ++k) {
      const std::size_t i = static_cast<std::size_t>(e * kNpp + k);
      const double w = g.mass[static_cast<std::size_t>(k)];
      const double dc = out.control_field[i] - out.mean_control;
      const double dt_ = out.test_field[i] - out.mean_test;
      const double diff = out.test_field[i] - out.control_field[i];
      se += w * diff * diff;
      cov += w * dc * dt_;
      var_c += w * dc * dc;
      var_t += w * dt_ * dt_;
      maxd = std::max(maxd, std::abs(diff));
    }
  }
  out.rmse = std::sqrt(se / area);
  out.pattern_correlation =
      (var_c > 0 && var_t > 0) ? cov / std::sqrt(var_c * var_t) : 1.0;
  out.max_abs_diff = maxd;
  return out;
}

}  // namespace validation
