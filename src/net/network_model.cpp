#include "net/network_model.hpp"

#include <cmath>

namespace net {

double NetworkModel::allreduce_seconds(int nranks, std::size_t bytes) const {
  if (nranks <= 1) return 0.0;
  const double depth = std::ceil(std::log2(static_cast<double>(nranks)));
  const bool crosses_supernodes =
      nranks > p_.procs_per_supernode * p_.cgs_per_proc;
  const double a =
      crosses_supernodes ? p_.alpha_inter_super_s : p_.alpha_intra_super_s;
  return depth * (a + static_cast<double>(bytes) / p_.node_injection_bw);
}

}  // namespace net
