#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

/// \file mini_mpi.hpp
/// An in-process message-passing runtime with MPI-shaped semantics.
///
/// TaihuLight programs follow "MPI + X": one MPI process per core group,
/// Athread/OpenACC inside. We reproduce the MPI layer with a small
/// threaded runtime so that the multi-rank algorithms of the paper —
/// above all the redesigned bndry_exchangev with computation/communication
/// overlap (section 7.6) — run *functionally* at small rank counts and can
/// be tested for equivalence against their sequential references.
/// Machine-scale communication cost comes from the analytic model in
/// network_model.hpp instead.

namespace net {

class Cluster;

/// A posted nonblocking operation. Sends are buffered and complete
/// immediately; receives complete when a matching message arrives.
class Request {
 public:
  Request() = default;

 private:
  friend class Rank;
  bool is_recv_ = false;
  int src_ = -1;
  int tag_ = 0;
  std::span<double> out_{};
  bool done_ = true;
};

/// The per-process communication handle passed to every rank function.
class Rank {
 public:
  int rank() const { return rank_; }
  int size() const { return size_; }

  /// Buffered standard send: copies \p data and returns immediately.
  void send(int dst, int tag, std::span<const double> data);
  /// Nonblocking send (buffered, completes immediately; kept for API
  /// parity with the CAM communication code).
  Request isend(int dst, int tag, std::span<const double> data);
  /// Blocking receive into \p out (must match the sent length).
  void recv(int src, int tag, std::span<double> out);
  /// Nonblocking receive; complete it with wait().
  Request irecv(int src, int tag, std::span<double> out);
  void wait(Request& req);
  void wait_all(std::span<Request> reqs);

  void barrier();
  double allreduce_sum(double value);
  double allreduce_max(double value);
  double allreduce_min(double value);
  /// Gather one double from every rank (result valid on all ranks).
  std::vector<double> allgather(double value);

 private:
  friend class Cluster;
  Cluster* cluster_ = nullptr;
  int rank_ = 0;
  int size_ = 0;
};

/// A set of ranks executed on real threads. Construct, then run() a rank
/// function; exceptions thrown by any rank are rethrown from run().
class Cluster {
 public:
  explicit Cluster(int nranks);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  int size() const { return nranks_; }

  /// Execute \p fn as every rank, in parallel, and join.
  void run(const std::function<void(Rank&)>& fn);

 private:
  friend class Rank;

  struct Message {
    int src;
    int tag;
    std::vector<double> payload;
  };

  struct Mailbox {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Message> messages;
  };

  Mailbox& mailbox(int rank) { return *mailboxes_[static_cast<std::size_t>(rank)]; }

  void deposit(int dst, Message msg);
  Message retrieve(int self, int src, int tag);

  // Barrier / reduction rendezvous state.
  std::mutex coll_mu_;
  std::condition_variable coll_cv_;
  int coll_arrived_ = 0;
  std::uint64_t coll_generation_ = 0;
  double coll_acc_ = 0.0;
  double coll_result_ = 0.0;

  int nranks_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
};

}  // namespace net
