#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "obs/trace.hpp"
#include "sw/fault.hpp"

/// \file mini_mpi.hpp
/// An in-process message-passing runtime with MPI-shaped semantics.
///
/// TaihuLight programs follow "MPI + X": one MPI process per core group,
/// Athread/OpenACC inside. We reproduce the MPI layer with a small
/// threaded runtime so that the multi-rank algorithms of the paper —
/// above all the redesigned bndry_exchangev with computation/communication
/// overlap (section 7.6) — run *functionally* at small rank counts and can
/// be tested for equivalence against their sequential references.
/// Machine-scale communication cost comes from the analytic model in
/// network_model.hpp instead.
///
/// Resilience: the cluster accepts a sw::FaultPlan that injects message
/// drop / duplication / truncation on the Nth send of a chosen rank, and
/// a watchdog (default off) that bounds every blocking receive and
/// collective. Any fault surfaces as a typed net::CommFault — a length
/// mismatch or truncation at the receiver, a net::CommTimeout naming the
/// blocked rank/src/tag for a lost message — never as a hang: when one
/// rank fails, the cluster aborts every peer still blocked in it.

namespace net {

class Cluster;

/// Typed surface of a communication failure: which rank, which peer,
/// which tag, and the byte counts involved.
class CommFault : public std::runtime_error {
 public:
  CommFault(const std::string& what, int rank, int peer, int tag,
            std::size_t bytes_expected = 0, std::size_t bytes_got = 0)
      : std::runtime_error(what), rank_(rank), peer_(peer), tag_(tag),
        bytes_expected_(bytes_expected), bytes_got_(bytes_got) {}

  int rank() const { return rank_; }
  int peer() const { return peer_; }
  int tag() const { return tag_; }
  std::size_t bytes_expected() const { return bytes_expected_; }
  std::size_t bytes_got() const { return bytes_got_; }

 private:
  int rank_;
  int peer_;
  int tag_;
  std::size_t bytes_expected_;
  std::size_t bytes_got_;
};

/// The cluster watchdog fired: a receive or collective blocked past the
/// configured bound. The mini-MPI analogue of sw::SchedulerDeadlock.
class CommTimeout : public CommFault {
 public:
  CommTimeout(const std::string& what, int rank, int src, int tag)
      : CommFault(what, rank, src, tag) {}
};

/// A posted nonblocking operation. Sends are buffered and complete
/// immediately; receives complete when a matching message arrives.
class Request {
 public:
  Request() = default;

 private:
  friend class Rank;
  bool is_recv_ = false;
  int src_ = -1;
  int tag_ = 0;
  std::span<double> out_{};
  bool done_ = true;
};

/// The per-process communication handle passed to every rank function.
class Rank {
 public:
  int rank() const { return rank_; }
  int size() const { return size_; }

  /// Buffered standard send: copies \p data and returns immediately.
  void send(int dst, int tag, std::span<const double> data);
  /// Nonblocking send (buffered, completes immediately; kept for API
  /// parity with the CAM communication code).
  Request isend(int dst, int tag, std::span<const double> data);
  /// Blocking receive into \p out. Throws CommFault when the matching
  /// message's payload length differs from the \p out span (never copies
  /// out of bounds or truncates silently).
  void recv(int src, int tag, std::span<double> out);
  /// Nonblocking receive; complete it with wait().
  Request irecv(int src, int tag, std::span<double> out);
  void wait(Request& req);
  void wait_all(std::span<Request> reqs);

  void barrier();
  double allreduce_sum(double value);
  double allreduce_max(double value);
  double allreduce_min(double value);
  /// Gather one double from every rank (result valid on all ranks).
  std::vector<double> allgather(double value);

  /// This rank's trace track ("rank<r>"), or nullptr when the cluster has
  /// no tracer. The dycore layers share it so net events nest inside
  /// their step spans.
  obs::Track* trace_track();

 private:
  friend class Cluster;
  double allreduce_sum_impl(double value);

  Cluster* cluster_ = nullptr;
  int rank_ = 0;
  int size_ = 0;
  obs::Track* trk_ = nullptr;
  bool trk_init_ = false;
};

/// A set of ranks executed on real threads. Construct, then run() a rank
/// function; exceptions thrown by any rank are rethrown from run().
class Cluster {
 public:
  explicit Cluster(int nranks);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  int size() const { return nranks_; }

  /// Inject message faults per \p plan (nullptr detaches). The plan's
  /// kMsg* specs fire on the Nth send of the matching source rank.
  void set_fault_plan(sw::FaultPlan* plan) { faults_ = plan; }
  sw::FaultPlan* fault_plan() const { return faults_; }

  /// Bound every blocking receive and collective wait by \p seconds
  /// (<= 0 disables, the default): a rank blocked longer throws
  /// CommTimeout naming itself, the awaited source and the tag.
  void set_watchdog(double seconds) { watchdog_seconds_ = seconds; }
  double watchdog() const { return watchdog_seconds_; }

  /// Execute \p fn as every rank, in parallel, and join.
  void run(const std::function<void(Rank&)>& fn);

  /// Attach a tracer: every rank reports sends/receives/collectives,
  /// watchdog-bounded waits and injected message faults on its own
  /// "rank<r>" track (pid = r). nullptr detaches. Call while no rank
  /// function is running.
  void set_tracer(obs::Tracer* t);
  obs::Tracer* tracer() const { return tracer_; }
  /// Rank \p r's track, created lazily (nullptr when no tracer attached).
  /// Only rank r's thread may use the returned track for recording.
  obs::Track* rank_track(int r);

 private:
  friend class Rank;

  struct Message {
    int src;
    int tag;
    std::vector<double> payload;
  };

  struct Mailbox {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Message> messages;
  };

  Mailbox& mailbox(int rank) { return *mailboxes_[static_cast<std::size_t>(rank)]; }

  void deposit(int dst, Message msg);
  Message retrieve(int self, int src, int tag);
  /// Mark the cluster failed and wake every blocked rank so no peer of a
  /// dead rank waits forever.
  void abort_peers();

  // Barrier / reduction rendezvous state.
  std::mutex coll_mu_;
  std::condition_variable coll_cv_;
  int coll_arrived_ = 0;
  std::uint64_t coll_generation_ = 0;
  double coll_acc_ = 0.0;
  double coll_result_ = 0.0;

  sw::FaultPlan* faults_ = nullptr;
  double watchdog_seconds_ = 0.0;
  std::atomic<bool> aborted_{false};

  obs::Tracer* tracer_ = nullptr;
  std::vector<obs::Track*> rank_tracks_;

  int nranks_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
};

}  // namespace net
