#pragma once

#include <cstddef>
#include <cstdint>

/// \file network_model.hpp
/// Analytic cost model of the Sunway TaihuLight interconnect.
///
/// The machine uses a two-level network (section 5.1 of the paper): inside
/// a supernode 256 processors are fully connected through a customized
/// network board; across supernodes traffic goes through central switches.
/// Each processor hosts 4 core groups = 4 MPI processes. Point-to-point
/// cost is the classic alpha-beta (latency + bytes/bandwidth) model with a
/// level-dependent latency, plus an injection-bandwidth cap per node.
///
/// All machine-scale communication times in the scaling benches (Figures
/// 6-8, Table 3) come from this model composed with kernel costs measured
/// on the functional simulator.

namespace net {

struct NetworkParams {
  double alpha_intra_node_s = 6.0e-7;   ///< CG-to-CG inside one processor
  double alpha_intra_super_s = 1.5e-6;  ///< within a supernode (one board hop)
  double alpha_inter_super_s = 4.5e-6;  ///< through the central switches
  double node_injection_bw = 8.0e9;     ///< bytes/s in+out per processor
  int procs_per_supernode = 256;        ///< processors behind one board
  int cgs_per_proc = 4;                 ///< MPI ranks per processor
};

/// Maps ranks to the physical hierarchy and prices messages.
class NetworkModel {
 public:
  explicit NetworkModel(NetworkParams p = {}) : p_(p) {}

  const NetworkParams& params() const { return p_; }

  int processor_of(int rank) const { return rank / p_.cgs_per_proc; }
  int supernode_of(int rank) const {
    return processor_of(rank) / p_.procs_per_supernode;
  }

  /// Latency class of a point-to-point message between two ranks.
  double alpha(int rank_a, int rank_b) const {
    if (processor_of(rank_a) == processor_of(rank_b)) {
      return p_.alpha_intra_node_s;
    }
    if (supernode_of(rank_a) == supernode_of(rank_b)) {
      return p_.alpha_intra_super_s;
    }
    return p_.alpha_inter_super_s;
  }

  /// Time for one point-to-point message.
  double pt2pt_seconds(int rank_a, int rank_b, std::size_t bytes) const {
    return alpha(rank_a, rank_b) +
           static_cast<double>(bytes) / p_.node_injection_bw;
  }

  /// Time for one halo exchange performed by a single rank: it sends and
  /// receives \p bytes_per_neighbor to each of \p nneighbors neighbors.
  /// With an SFC partition most neighbors are topologically close; the
  /// \p remote_fraction of them pay the inter-supernode latency. Messages
  /// to distinct neighbors pipeline, but the node injection bandwidth is
  /// shared, so the bandwidth term sums over neighbors (both directions).
  double halo_exchange_seconds(int nneighbors, std::size_t bytes_per_neighbor,
                               double remote_fraction) const {
    const double a =
        p_.alpha_intra_super_s * (1.0 - remote_fraction) +
        p_.alpha_inter_super_s * remote_fraction;
    const double bw_time = 2.0 * static_cast<double>(nneighbors) *
                           static_cast<double>(bytes_per_neighbor) /
                           (p_.node_injection_bw /
                            static_cast<double>(p_.cgs_per_proc));
    return a + bw_time;
  }

  /// Latency of a machine-wide reduction over \p nranks ranks
  /// (binary-tree depth times the dominant latency class).
  double allreduce_seconds(int nranks, std::size_t bytes) const;

 private:
  NetworkParams p_;
};

}  // namespace net
