#include "net/mini_mpi.hpp"

#include <algorithm>
#include <cassert>
#include <exception>
#include <stdexcept>
#include <thread>

namespace net {

// ---------------------------------------------------------------------------
// Rank
// ---------------------------------------------------------------------------

void Rank::send(int dst, int tag, std::span<const double> data) {
  assert(dst >= 0 && dst < size_);
  cluster_->deposit(dst,
                    Cluster::Message{rank_, tag,
                                     std::vector<double>(data.begin(),
                                                         data.end())});
}

Request Rank::isend(int dst, int tag, std::span<const double> data) {
  send(dst, tag, data);
  return Request{};  // buffered: already complete
}

void Rank::recv(int src, int tag, std::span<double> out) {
  auto msg = cluster_->retrieve(rank_, src, tag);
  if (msg.payload.size() != out.size()) {
    throw std::runtime_error("mini_mpi: message length mismatch (got " +
                             std::to_string(msg.payload.size()) +
                             ", expected " + std::to_string(out.size()) +
                             ")");
  }
  std::copy(msg.payload.begin(), msg.payload.end(), out.begin());
}

Request Rank::irecv(int src, int tag, std::span<double> out) {
  Request r;
  r.is_recv_ = true;
  r.src_ = src;
  r.tag_ = tag;
  r.out_ = out;
  r.done_ = false;
  return r;
}

void Rank::wait(Request& req) {
  if (req.done_) return;
  recv(req.src_, req.tag_, req.out_);
  req.done_ = true;
}

void Rank::wait_all(std::span<Request> reqs) {
  for (auto& r : reqs) wait(r);
}

void Rank::barrier() { (void)allreduce_sum(0.0); }

double Rank::allreduce_sum(double value) {
  // Generation-counted rendezvous. A rank can only join generation n+1
  // after leaving generation n, so coll_result_ for generation n stays
  // valid until every rank has read it.
  Cluster& c = *cluster_;
  std::unique_lock<std::mutex> lock(c.coll_mu_);
  const std::uint64_t my_gen = c.coll_generation_;
  if (c.coll_arrived_ == 0) c.coll_acc_ = 0.0;
  c.coll_acc_ += value;
  c.coll_arrived_ += 1;
  if (c.coll_arrived_ == size_) {
    c.coll_result_ = c.coll_acc_;
    c.coll_arrived_ = 0;
    c.coll_generation_ += 1;
    c.coll_cv_.notify_all();
    return c.coll_result_;
  }
  c.coll_cv_.wait(lock, [&] { return c.coll_generation_ != my_gen; });
  return c.coll_result_;
}

double Rank::allreduce_max(double value) {
  auto all = allgather(value);
  return *std::max_element(all.begin(), all.end());
}

double Rank::allreduce_min(double value) {
  auto all = allgather(value);
  return *std::min_element(all.begin(), all.end());
}

std::vector<double> Rank::allgather(double value) {
  // Simple two-phase: everyone sends to everyone via mailboxes with a
  // reserved tag, then receives size-1 values. A barrier on each side
  // isolates concurrent allgathers.
  constexpr int kTag = -424242;
  barrier();
  for (int dst = 0; dst < size_; ++dst) {
    if (dst != rank_) send(dst, kTag, std::span<const double>(&value, 1));
  }
  std::vector<double> out(static_cast<std::size_t>(size_));
  out[static_cast<std::size_t>(rank_)] = value;
  for (int src = 0; src < size_; ++src) {
    if (src != rank_) {
      recv(src, kTag,
           std::span<double>(&out[static_cast<std::size_t>(src)], 1));
    }
  }
  barrier();
  return out;
}

// ---------------------------------------------------------------------------
// Cluster
// ---------------------------------------------------------------------------

Cluster::Cluster(int nranks) : nranks_(nranks) {
  if (nranks < 1) throw std::invalid_argument("Cluster needs >= 1 rank");
  mailboxes_.reserve(static_cast<std::size_t>(nranks));
  for (int i = 0; i < nranks; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
}

Cluster::~Cluster() = default;

void Cluster::deposit(int dst, Message msg) {
  Mailbox& box = mailbox(dst);
  {
    std::lock_guard<std::mutex> lock(box.mu);
    box.messages.push_back(std::move(msg));
  }
  box.cv.notify_all();
}

Cluster::Message Cluster::retrieve(int self, int src, int tag) {
  Mailbox& box = mailbox(self);
  std::unique_lock<std::mutex> lock(box.mu);
  for (;;) {
    for (auto it = box.messages.begin(); it != box.messages.end(); ++it) {
      if (it->src == src && it->tag == tag) {
        Message msg = std::move(*it);
        box.messages.erase(it);
        return msg;
      }
    }
    box.cv.wait(lock);
  }
}

void Cluster::run(const std::function<void(Rank&)>& fn) {
  // Fresh collective state per run.
  coll_arrived_ = 0;
  coll_generation_ = 0;
  coll_acc_ = 0.0;
  coll_result_ = 0.0;
  for (auto& box : mailboxes_) {
    std::lock_guard<std::mutex> lock(box->mu);
    box->messages.clear();
  }

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks_));
  std::mutex err_mu;
  std::exception_ptr first_error;

  for (int r = 0; r < nranks_; ++r) {
    threads.emplace_back([&, r] {
      Rank rank;
      rank.cluster_ = this;
      rank.rank_ = r;
      rank.size_ = nranks_;
      try {
        fn(rank);
      } catch (...) {
        std::lock_guard<std::mutex> lock(err_mu);
        if (!first_error) first_error = std::current_exception();
        // Unblock peers waiting on collectives so the join terminates.
        coll_cv_.notify_all();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace net
