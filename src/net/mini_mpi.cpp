#include "net/mini_mpi.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <exception>
#include <stdexcept>
#include <thread>

namespace net {

// ---------------------------------------------------------------------------
// Rank
// ---------------------------------------------------------------------------

obs::Track* Rank::trace_track() {
  if (!trk_init_) {
    trk_ = cluster_->rank_track(rank_);
    trk_init_ = true;
  }
  return trk_;
}

void Rank::send(int dst, int tag, std::span<const double> data) {
  assert(dst >= 0 && dst < size_);
  obs::Track* trk = trace_track();
  const std::uint64_t bytes = data.size() * sizeof(double);
  if (trk != nullptr) {
    const obs::Counter args[2] = {{"bytes", bytes},
                                  {"dst", static_cast<std::uint64_t>(dst)}};
    trk->instant("net:send", args);
  }
  if (sw::FaultPlan* fp = cluster_->faults_) {
    if (const auto f = fp->on_message(rank_)) {
      fp->note_fired(*f, bytes);
      // An injected fault that the run survives would otherwise be
      // invisible: record it as a counted instant either way.
      const auto note_fault = [&](const char* what) {
        if (trk != nullptr) {
          const obs::Counter args[1] = {{"bytes", bytes}};
          trk->instant(what, args);
        }
      };
      switch (f->kind) {
        case sw::FaultKind::kMsgDrop:
          note_fault("net:fault:drop");
          return;  // lost on the wire
        case sw::FaultKind::kMsgDuplicate:
          note_fault("net:fault:duplicate");
          cluster_->deposit(dst,
                            Cluster::Message{rank_, tag,
                                             std::vector<double>(data.begin(),
                                                                 data.end())});
          break;  // plus the normal copy below
        case sw::FaultKind::kMsgTruncate: {
          note_fault("net:fault:truncate");
          cluster_->deposit(
              dst, Cluster::Message{rank_, tag,
                                    std::vector<double>(
                                        data.begin(),
                                        data.begin() +
                                            static_cast<std::ptrdiff_t>(
                                                data.size() / 2))});
          return;  // the tail never arrives
        }
        default:
          break;  // kernel-side kinds are never returned by on_message
      }
    }
  }
  cluster_->deposit(dst,
                    Cluster::Message{rank_, tag,
                                     std::vector<double>(data.begin(),
                                                         data.end())});
}

Request Rank::isend(int dst, int tag, std::span<const double> data) {
  send(dst, tag, data);
  return Request{};  // buffered: already complete
}

void Rank::recv(int src, int tag, std::span<double> out) {
  obs::Track* trk = trace_track();
  if (trk != nullptr) trk->begin("net:recv");
  Cluster::Message msg = [&] {
    try {
      return cluster_->retrieve(rank_, src, tag);
    } catch (...) {
      if (trk != nullptr) {
        trk->instant("net:comm_fault");
        trk->end();
      }
      throw;
    }
  }();
  if (msg.payload.size() != out.size()) {
    if (trk != nullptr) {
      trk->instant("net:fault:length_mismatch");
      trk->end();
    }
    throw CommFault(
        "mini_mpi: rank " + std::to_string(rank_) + " recv from " +
            std::to_string(src) + " tag " + std::to_string(tag) +
            ": payload length mismatch (got " +
            std::to_string(msg.payload.size() * sizeof(double)) +
            " bytes, expected " + std::to_string(out.size() * sizeof(double)) +
            ")",
        rank_, src, tag, out.size() * sizeof(double),
        msg.payload.size() * sizeof(double));
  }
  std::copy(msg.payload.begin(), msg.payload.end(), out.begin());
  if (trk != nullptr) {
    const obs::Counter args[2] = {
        {"bytes",
         static_cast<std::uint64_t>(msg.payload.size() * sizeof(double))},
        {"src", static_cast<std::uint64_t>(src)}};
    trk->end(args);
  }
}

Request Rank::irecv(int src, int tag, std::span<double> out) {
  Request r;
  r.is_recv_ = true;
  r.src_ = src;
  r.tag_ = tag;
  r.out_ = out;
  r.done_ = false;
  return r;
}

void Rank::wait(Request& req) {
  if (req.done_) return;
  recv(req.src_, req.tag_, req.out_);
  req.done_ = true;
}

void Rank::wait_all(std::span<Request> reqs) {
  for (auto& r : reqs) wait(r);
}

void Rank::barrier() { (void)allreduce_sum(0.0); }

double Rank::allreduce_sum(double value) {
  obs::Track* trk = trace_track();
  if (trk == nullptr) return allreduce_sum_impl(value);
  obs::ScopedSpan span(trk, "net:allreduce");
  return allreduce_sum_impl(value);
}

double Rank::allreduce_sum_impl(double value) {
  // Generation-counted rendezvous. A rank can only join generation n+1
  // after leaving generation n, so coll_result_ for generation n stays
  // valid until every rank has read it.
  Cluster& c = *cluster_;
  std::unique_lock<std::mutex> lock(c.coll_mu_);
  const std::uint64_t my_gen = c.coll_generation_;
  if (c.coll_arrived_ == 0) c.coll_acc_ = 0.0;
  c.coll_acc_ += value;
  c.coll_arrived_ += 1;
  if (c.coll_arrived_ == size_) {
    c.coll_result_ = c.coll_acc_;
    c.coll_arrived_ = 0;
    c.coll_generation_ += 1;
    c.coll_cv_.notify_all();
    return c.coll_result_;
  }
  const auto done = [&] {
    return c.coll_generation_ != my_gen || c.aborted_.load();
  };
  if (c.watchdog_seconds_ > 0.0) {
    // A watchdog-bounded wait that succeeds must still be visible in the
    // per-phase summary (not only when it times out and throws).
    if (trk_ != nullptr) trk_->instant("net:watchdog_wait");
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration<double>(c.watchdog_seconds_);
    if (!c.coll_cv_.wait_until(lock, deadline, done)) {
      throw CommTimeout("mini_mpi: rank " + std::to_string(rank_) +
                            " blocked in a collective past the " +
                            std::to_string(c.watchdog_seconds_) +
                            " s watchdog",
                        rank_, -1, -1);
    }
  } else {
    c.coll_cv_.wait(lock, done);
  }
  if (c.coll_generation_ == my_gen) {
    throw CommFault("mini_mpi: rank " + std::to_string(rank_) +
                        " aborted in a collective: a peer rank failed",
                    rank_, -1, -1);
  }
  return c.coll_result_;
}

double Rank::allreduce_max(double value) {
  auto all = allgather(value);
  return *std::max_element(all.begin(), all.end());
}

double Rank::allreduce_min(double value) {
  auto all = allgather(value);
  return *std::min_element(all.begin(), all.end());
}

std::vector<double> Rank::allgather(double value) {
  // Simple two-phase: everyone sends to everyone via mailboxes with a
  // reserved tag, then receives size-1 values. A barrier on each side
  // isolates concurrent allgathers.
  obs::ScopedSpan span(trace_track(), "net:allgather");
  constexpr int kTag = -424242;
  barrier();
  for (int dst = 0; dst < size_; ++dst) {
    if (dst != rank_) send(dst, kTag, std::span<const double>(&value, 1));
  }
  std::vector<double> out(static_cast<std::size_t>(size_));
  out[static_cast<std::size_t>(rank_)] = value;
  for (int src = 0; src < size_; ++src) {
    if (src != rank_) {
      recv(src, kTag,
           std::span<double>(&out[static_cast<std::size_t>(src)], 1));
    }
  }
  barrier();
  return out;
}

// ---------------------------------------------------------------------------
// Cluster
// ---------------------------------------------------------------------------

Cluster::Cluster(int nranks) : nranks_(nranks) {
  if (nranks < 1) throw std::invalid_argument("Cluster needs >= 1 rank");
  mailboxes_.reserve(static_cast<std::size_t>(nranks));
  for (int i = 0; i < nranks; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
}

Cluster::~Cluster() = default;

void Cluster::set_tracer(obs::Tracer* t) {
  tracer_ = t;
  rank_tracks_.assign(static_cast<std::size_t>(nranks_), nullptr);
}

obs::Track* Cluster::rank_track(int r) {
  if (tracer_ == nullptr) return nullptr;
  obs::Track*& slot = rank_tracks_[static_cast<std::size_t>(r)];
  if (slot == nullptr) {
    slot = &tracer_->track("rank" + std::to_string(r), r, 0);
  }
  return slot;
}

void Cluster::deposit(int dst, Message msg) {
  Mailbox& box = mailbox(dst);
  {
    std::lock_guard<std::mutex> lock(box.mu);
    box.messages.push_back(std::move(msg));
  }
  box.cv.notify_all();
}

Cluster::Message Cluster::retrieve(int self, int src, int tag) {
  Mailbox& box = mailbox(self);
  std::unique_lock<std::mutex> lock(box.mu);
  bool timed_out = false;
  bool watchdog_noted = false;
  for (;;) {
    for (auto it = box.messages.begin(); it != box.messages.end(); ++it) {
      if (it->src == src && it->tag == tag) {
        Message msg = std::move(*it);
        box.messages.erase(it);
        return msg;
      }
    }
    if (aborted_.load()) {
      throw CommFault("mini_mpi: rank " + std::to_string(self) +
                          " aborted while waiting for src " +
                          std::to_string(src) + " tag " + std::to_string(tag) +
                          ": a peer rank failed",
                      self, src, tag);
    }
    if (timed_out) {
      throw CommTimeout("mini_mpi: watchdog timeout after " +
                            std::to_string(watchdog_seconds_) + " s: rank " +
                            std::to_string(self) +
                            " blocked in recv(src=" + std::to_string(src) +
                            ", tag=" + std::to_string(tag) + ")",
                        self, src, tag);
    }
    if (watchdog_seconds_ > 0.0) {
      if (!watchdog_noted) {
        // Counted once per blocking receive, even when the message then
        // arrives in time: successful watchdog-bounded waits must show in
        // the summary, not just the ones that throw.
        if (obs::Track* trk = rank_track(self)) {
          trk->instant("net:watchdog_wait");
        }
        watchdog_noted = true;
      }
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::duration<double>(watchdog_seconds_);
      timed_out = box.cv.wait_until(lock, deadline) ==
                  std::cv_status::timeout;
    } else {
      box.cv.wait(lock);
    }
  }
}

void Cluster::abort_peers() {
  aborted_.store(true);
  coll_cv_.notify_all();
  for (auto& box : mailboxes_) box->cv.notify_all();
}

void Cluster::run(const std::function<void(Rank&)>& fn) {
  // Fresh collective state per run.
  coll_arrived_ = 0;
  coll_generation_ = 0;
  coll_acc_ = 0.0;
  coll_result_ = 0.0;
  aborted_.store(false);
  for (auto& box : mailboxes_) {
    std::lock_guard<std::mutex> lock(box->mu);
    box->messages.clear();
  }

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks_));
  std::mutex err_mu;
  std::exception_ptr first_error;

  for (int r = 0; r < nranks_; ++r) {
    threads.emplace_back([&, r] {
      Rank rank;
      rank.cluster_ = this;
      rank.rank_ = r;
      rank.size_ = nranks_;
      try {
        fn(rank);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(err_mu);
          if (!first_error) first_error = std::current_exception();
        }
        // Unblock peers waiting on collectives or receives so the join
        // terminates: a failed rank must never hang the cluster.
        abort_peers();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace net
