#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <queue>
#include <vector>

/// \file queue.hpp
/// The engine's bounded submission queue: priority-ordered (higher
/// priority first, FIFO within a priority), with backpressure — push
/// either blocks until a slot frees or reports kFull, per caller choice.
/// close() drains: pending items are still popped, then every popper
/// sees nullopt. All operations are thread safe; the engine's workers
/// and submitters share one instance.

namespace svc {

template <typename T>
class BoundedQueue {
 public:
  enum class Push { kOk, kFull, kClosed };

  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  /// Enqueue \p item. With \p block, waits for a slot while the queue is
  /// full; otherwise returns kFull immediately. kClosed after close().
  Push push(T item, int priority = 0, bool block = true) {
    std::unique_lock<std::mutex> lock(mu_);
    if (block) {
      space_cv_.wait(lock,
                     [&] { return closed_ || heap_.size() < capacity_; });
    }
    if (closed_) return Push::kClosed;
    if (heap_.size() >= capacity_) return Push::kFull;
    heap_.push(Entry{priority, seq_++, std::move(item)});
    high_water_ = std::max(high_water_, heap_.size());
    item_cv_.notify_one();
    return Push::kOk;
  }

  /// Dequeue the highest-priority item, blocking while empty. nullopt
  /// once the queue is closed and drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mu_);
    item_cv_.wait(lock, [&] { return closed_ || !heap_.empty(); });
    if (heap_.empty()) return std::nullopt;
    // priority_queue::top is const; the entry is moved out via const_cast,
    // which is safe because pop() removes it immediately.
    T item = std::move(const_cast<Entry&>(heap_.top()).item);
    heap_.pop();
    space_cv_.notify_one();
    return item;
  }

  /// No further pushes; poppers drain what is queued, then see nullopt.
  void close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    item_cv_.notify_all();
    space_cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }
  std::size_t depth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return heap_.size();
  }
  /// Deepest the queue has ever been (backpressure telemetry).
  std::size_t high_water() const {
    std::lock_guard<std::mutex> lock(mu_);
    return high_water_;
  }
  std::size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    int priority;
    std::uint64_t seq;
    T item;
  };
  struct Order {
    // std::priority_queue surfaces the *largest* element: higher priority
    // wins, earlier sequence breaks ties (FIFO within a priority).
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.priority != b.priority) return a.priority < b.priority;
      return a.seq > b.seq;
    }
  };

  mutable std::mutex mu_;
  std::condition_variable item_cv_;
  std::condition_variable space_cv_;
  std::priority_queue<Entry, std::vector<Entry>, Order> heap_;
  std::size_t capacity_;
  std::size_t high_water_ = 0;
  std::uint64_t seq_ = 0;
  bool closed_ = false;
};

}  // namespace svc
