#include "svc/server.hpp"

#include <stdexcept>
#include <utility>
#include <vector>

/// \file lifecycle.cpp
/// The svc::Server supervision state machine: the lifecycle thread that
/// turns terminal engine results into retries or retirements, the
/// graceful drain (cancel + checkpoint + park), and the restart that
/// re-admits parked members from their checkpoint chains. See
/// server.cpp for the locking rules.

namespace svc {

namespace {

std::chrono::steady_clock::time_point after_seconds(double s) {
  return std::chrono::steady_clock::now() +
         std::chrono::duration_cast<std::chrono::steady_clock::duration>(
             std::chrono::duration<double>(s > 0.0 ? s : 0.0));
}

}  // namespace

void Server::lifecycle_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    // Sleep until an engine member terminalizes (the hook sets
    // terminal_dirty_) or the earliest backoff deadline passes.
    auto deadline = std::chrono::steady_clock::time_point::max();
    bool have_deadline = false;
    for (const auto& [name, m] : members_) {
      if (m.phase == MemberPhase::kBackoff && m.retry_at < deadline) {
        deadline = m.retry_at;
        have_deadline = true;
      }
    }
    if (have_deadline) {
      cv_.wait_until(lock, deadline,
                     [&] { return stop_ || terminal_dirty_; });
    } else {
      cv_.wait(lock, [&] { return stop_ || terminal_dirty_; });
    }
    if (stop_) return;
    terminal_dirty_ = false;

    // Terminal attempts: schedule a retry or retire the member.
    for (auto& [name, m] : members_) {
      if (m.phase == MemberPhase::kActive && m.ticket != nullptr &&
          m.ticket->done()) {
        handle_terminal(m);
      }
    }

    // Backoffs whose delay has elapsed: re-submit outside mu_ (the
    // engine queue may block under backpressure).
    std::vector<std::string> due;
    const auto now = std::chrono::steady_clock::now();
    for (const auto& [name, m] : members_) {
      if (m.phase == MemberPhase::kBackoff && m.retry_at <= now) {
        due.push_back(name);
      }
    }
    if (!due.empty()) {
      lock.unlock();
      for (const auto& name : due) resubmit(name);
      lock.lock();
    }
  }
}

void Server::handle_terminal(Member& m) {
  const RunResult& res = m.ticket->wait();  // already terminal; no block
  m.last_state = res.state;
  m.state_crc = res.state_crc;
  m.resumed_from = res.resumed_from;
  m.error = res.error;
  switch (res.state) {
    case RunState::kFaulted:
      if (m.attempts < cfg_.retry.max_attempts) {
        // Attempt k failing schedules retry k (1-based) of the policy.
        const double delay = cfg_.retry.delay_s(m.name, m.attempts);
        m.retry_delays_s.push_back(delay);
        m.retry_at = after_seconds(delay * cfg_.retry.sleep_scale);
        m.phase = MemberPhase::kBackoff;
      } else {
        m.phase = MemberPhase::kDone;
        admission_.on_retired(m.tenant);
      }
      break;
    case RunState::kCancelled:
      if (state_ == ServerState::kDraining) {
        // Drained mid-run: the engine checkpointed it at its stop step
        // (checkpoint_on_exit); restart() resumes it from there.
        m.phase = MemberPhase::kParked;
      } else {
        m.phase = MemberPhase::kDone;  // a real cancel is final
        admission_.on_retired(m.tenant);
      }
      break;
    default:  // kCompleted and kDeadline are final outcomes
      m.phase = MemberPhase::kDone;
      admission_.on_retired(m.tenant);
      break;
  }
  cv_.notify_all();
}

void Server::resubmit(const std::string& name) {
  std::lock_guard<std::mutex> submit_lock(submit_mu_);
  RunRequest req;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = members_.find(name);
    if (it == members_.end()) return;
    Member& m = it->second;
    // A racing drain may have parked it, or a racing cancel finished it.
    if (m.phase != MemberPhase::kBackoff ||
        state_ != ServerState::kAdmitting) {
      return;
    }
    req = m.request;
    req.resume = true;
    req.priority = m.priority;
  }
  RunTicket ticket;
  try {
    ticket = engine_->submit(req);
  } catch (const std::exception&) {
    // Queue full in reject mode (or closed under a racing drain): stay
    // in backoff and try again after the base delay.
    std::lock_guard<std::mutex> lock(mu_);
    auto it = members_.find(name);
    if (it != members_.end() && it->second.phase == MemberPhase::kBackoff) {
      it->second.retry_at = after_seconds(cfg_.retry.backoff_base_s *
                                          cfg_.retry.sleep_scale);
    }
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  Member& m = members_.at(name);
  m.ticket = std::move(ticket);
  m.phase = MemberPhase::kActive;
  ++m.attempts;
  m.request.resume = true;
  ++retries_;
}

void Server::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] {
    for (const auto& [name, m] : members_) {
      if (m.phase == MemberPhase::kActive ||
          m.phase == MemberPhase::kBackoff) {
        return false;
      }
    }
    return true;
  });
}

void Server::drain() {
  std::lock_guard<std::mutex> submit_lock(submit_mu_);
  std::vector<RunTicket> to_cancel;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (state_ == ServerState::kStopped || engine_ == nullptr) return;
    state_ = ServerState::kDraining;
    for (const auto& [name, m] : members_) {
      if (m.phase == MemberPhase::kActive && m.ticket != nullptr) {
        to_cancel.push_back(m.ticket);
      }
    }
  }
  // Cancel outside mu_: queued members terminalize immediately, running
  // ones stop at the next step boundary and checkpoint their stop step.
  for (const auto& t : to_cancel) t->cancel();
  engine_->shutdown(/*drain=*/true);

  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, m] : members_) {
    if (m.phase == MemberPhase::kActive && m.ticket != nullptr &&
        m.ticket->done()) {
      handle_terminal(m);  // a member may have Completed under the race
    }
    if (m.phase == MemberPhase::kBackoff) {
      m.phase = MemberPhase::kParked;  // resumes on restart, not a timer
    }
  }
  fold(retired_, engine_->stats());
  engine_.reset();
  state_ = ServerState::kStopped;
  cv_.notify_all();
}

void Server::restart() {
  std::lock_guard<std::mutex> submit_lock(submit_mu_);
  std::vector<std::string> parked;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (state_ != ServerState::kStopped) {
      throw std::logic_error("svc::Server::restart: state is " +
                             std::string(to_string(state_)) +
                             ", expected stopped");
    }
    engine_ = std::make_unique<Engine>(cfg_.engine);
    attach_engine();
    state_ = ServerState::kAdmitting;
    ++restarts_;
    for (const auto& [name, m] : members_) {
      if (m.phase == MemberPhase::kParked) parked.push_back(name);
    }
  }
  for (const auto& name : parked) {
    RunRequest req;
    {
      std::lock_guard<std::mutex> lock(mu_);
      const Member& m = members_.at(name);
      req = m.request;
      req.resume = true;
      req.priority = m.priority;
    }
    RunTicket ticket = engine_->submit(req);  // blocking is fine here
    std::lock_guard<std::mutex> lock(mu_);
    Member& m = members_.at(name);
    m.ticket = std::move(ticket);
    m.phase = MemberPhase::kActive;
    ++m.attempts;
    ++m.restarts;
    m.request.resume = true;
  }
}

}  // namespace svc
