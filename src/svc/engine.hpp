#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "model/session.hpp"
#include "obs/report.hpp"
#include "scenario/registry.hpp"
#include "svc/queue.hpp"
#include "sw/config.hpp"

namespace sw {
class CgPool;
}

/// \file engine.hpp
/// svc::Engine — batched concurrent model runs.
///
/// The deployment shape of this model class is not one hero run but a
/// throughput machine: ensembles and parameter sweeps, many members
/// multiplexed over fixed compute. The engine is that shape in miniature:
/// a fixed worker pool pulls RunRequests (a model::SessionConfig + step
/// budget + priority) from a bounded submission queue with backpressure,
/// shares one immutable model::MeshBundle per (ne, nranks) across every
/// member, and resolves each request to a typed terminal state —
/// Completed, Faulted (the member threw; the worker survives), Cancelled,
/// or Deadline. Each request yields a per-request obs::Report; the engine
/// aggregates throughput (member-steps/s), queue high-water and worker
/// utilization into a summary report.

namespace svc {

enum class RunState : std::uint8_t {
  kQueued = 0,
  kRunning,
  kCompleted,  ///< ran its full step budget
  kFaulted,    ///< the member threw; error carries what()
  kCancelled,  ///< cancel() before completion (queued or mid-run)
  kDeadline    ///< wall-clock deadline expired mid-run
};

std::string_view to_string(RunState s);
inline bool is_terminal(RunState s) {
  return s != RunState::kQueued && s != RunState::kRunning;
}

/// One ensemble member: a session config plus how to run it. Instead of
/// a hand-built config, a member can name a registered scenario — the
/// engine then resolves `config` from the registry (defaults + overrides
/// + member binding), drives the scenario's forcing schedule during the
/// run, and checks its invariants on completion. Different members of
/// one engine can name different scenarios (mixed-scenario ensembles).
struct RunRequest {
  model::SessionConfig config;
  /// Registered scenario name; empty = use `config` as given. When set,
  /// `config` is overwritten at submit with
  /// scenario::get(scenario).config(overrides, member).
  std::string scenario;
  scenario::Overrides overrides;
  int member = 0;  ///< ensemble member bound into the scenario's InitSpec
  int steps = 1;
  int priority = 0;        ///< higher runs first; FIFO within a priority
  double deadline_s = 0.0; ///< wall budget from submit; 0 = none
  /// Modeled per-step coupler / data-ingest stall (seconds). Real
  /// ensemble members block on I/O and coupler exchanges between steps;
  /// the worker pool exists to overlap exactly that latency. 0 disables.
  double step_stall_s = 0.0;
  bool keep_state = false; ///< retain the final global state in the result
  /// Resume from the config's checkpoint chain when one exists on disk
  /// (model::Session::try_resume). \p steps then names the TOTAL step
  /// target — a member parked at step M runs only the remaining N - M
  /// steps. Without a checkpoint on disk the member starts fresh, so a
  /// first attempt and a retry share one request shape.
  bool resume = false;
  /// Checkpoint once more when the member stops early (cancelled or past
  /// deadline) and the config names a checkpoint base, so a later resume
  /// continues from the exact stop step rather than the last cadence
  /// save. Faulted members don't get this (their state may be mid-step);
  /// they retry from the last cadence checkpoint.
  bool checkpoint_on_exit = false;
};

/// Terminal outcome of one request. Move-only (owns the report and,
/// optionally, the final state).
struct RunResult {
  RunState state = RunState::kQueued;
  std::string error;           ///< what() of the fault (kFaulted only)
  int steps_done = 0;
  double wall_s = 0.0;         ///< executing time on the worker
  double queue_wait_s = 0.0;   ///< submit -> first execution
  int worker = -1;
  int fallbacks = 0;           ///< accelerator host fallbacks
  int resumed_from = 0;        ///< step_count restored from (0: fresh start)
  /// CRC32 of the member's serialized final state — the bit-identity
  /// handle: equal configs must yield equal digests at any worker count.
  std::uint32_t state_crc = 0;
  homme::Diagnostics diagnostics{};
  homme::State final_state;    ///< filled when RunRequest::keep_state
  obs::Report report{"svc_member"};  ///< per-request machine-readable record
};

/// Shared handle to a submitted request. All methods are thread safe.
class RunHandle {
 public:
  std::uint64_t id() const { return id_; }
  RunState state() const {
    std::lock_guard<std::mutex> lock(mu_);
    return state_;
  }
  bool done() const { return is_terminal(state()); }

  /// Best-effort cancel: a queued member never runs; a running member
  /// stops at the next step boundary. No-op once terminal.
  void cancel();

  /// Block until terminal; the result stays owned by the handle.
  const RunResult& wait();

 private:
  friend class Engine;
  explicit RunHandle(std::uint64_t id) : id_(id) {}

  bool begin_running(int worker);
  void finish(RunResult res);
  bool cancel_requested() const {
    return cancel_.load(std::memory_order_relaxed);
  }

  const std::uint64_t id_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  RunState state_ = RunState::kQueued;
  std::atomic<bool> cancel_{false};
  RunResult result_;
};

using RunTicket = std::shared_ptr<RunHandle>;

/// submit() refused a request because the queue was full (reject mode).
class QueueFull : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct EngineConfig {
  int workers = 2;
  std::size_t queue_capacity = 16;
  /// Backpressure policy when the queue is full: block the submitter
  /// (false, default) or throw QueueFull (true).
  bool reject_when_full = false;

  /// Where a member with a free core group choice goes: kPack fills the
  /// lowest-index pool (maximizing shared-controller contention per
  /// processor, leaving whole processors idle for power-down), kSpread
  /// picks the least-loaded pool (minimizing contention).
  enum class Placement { kPack, kSpread };

  /// Simulated SW26010 processors the engine places pipeline-backend
  /// members onto: each pool owns core_groups_per_pool groups behind one
  /// shared memory controller, and every placed member runs on one group
  /// of one pool, contending with co-located members. 0 (default) keeps
  /// the historical behavior — each member's session owns a private pool.
  int cg_pools = 0;
  int core_groups_per_pool = sw::kGroupsPerProcessor;
  Placement placement = Placement::kSpread;
};

/// A snapshot of the engine's aggregate telemetry.
struct EngineStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t faulted = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t deadline = 0;
  std::uint64_t rejected_full = 0;     ///< QueueFull throws (reject mode)
  std::uint64_t cancelled_queued = 0;  ///< cancelled before first execution
  std::uint64_t resumed = 0;           ///< members restored from a checkpoint
  std::uint64_t member_steps = 0;   ///< steps finished across all members
  double wall_s = 0.0;              ///< engine lifetime at snapshot
  double busy_s = 0.0;              ///< summed worker executing time
  std::size_t queue_depth = 0;
  std::size_t queue_high_water = 0;
  int workers = 0;
  std::size_t mesh_bundles = 0;          ///< distinct shapes resident
  std::size_t mesh_bundle_bytes = 0;     ///< resident shared mesh memory
  std::size_t mesh_bytes_unshared = 0;   ///< hypothetical per-member total

  // COW state + checkpoint accounting, sampled from each member after its
  // last step (homme::StoreStats / the async delta-writer counters).
  std::uint64_t state_samples = 0;        ///< members that reported state
  std::uint64_t state_logical_bytes = 0;  ///< fully-private state cost
  std::uint64_t state_resident_bytes = 0; ///< amortized COW-shared cost
  std::uint64_t state_chunks = 0;         ///< chunk slots sampled
  std::uint64_t state_shared_chunks = 0;  ///< slots aliased by other owners
  std::uint64_t checkpoint_saves = 0;     ///< async delta-writer saves
  std::uint64_t checkpoint_bytes = 0;     ///< bytes those saves wrote

  // Core-group placement telemetry (all zero when cg_pools == 0).
  std::uint64_t placed_members = 0;     ///< members placed onto engine pools
  std::size_t cg_pools = 0;             ///< pools the engine owns
  int cg_groups_busy_high_water = 0;    ///< max concurrently occupied groups
  int cg_stream_high_water = 0;         ///< max concurrent DMA streams, any pool
  std::uint64_t cg_contended_ops = 0;   ///< DMA descriptors issued contended
  std::uint64_t cg_contended_bytes = 0; ///< bytes those descriptors moved

  double member_steps_per_s() const {
    return wall_s > 0.0 ? static_cast<double>(member_steps) / wall_s : 0.0;
  }
  double utilization() const {
    const double cap = wall_s * workers;
    return cap > 0.0 ? busy_s / cap : 0.0;
  }
  double resident_bytes_per_member() const {
    return state_samples > 0
               ? static_cast<double>(state_resident_bytes) /
                     static_cast<double>(state_samples)
               : 0.0;
  }
  double cow_shared_fraction() const {
    return state_chunks > 0
               ? static_cast<double>(state_shared_chunks) /
                     static_cast<double>(state_chunks)
               : 0.0;
  }
  double checkpoint_bytes_per_step() const {
    return member_steps > 0
               ? static_cast<double>(checkpoint_bytes) /
                     static_cast<double>(member_steps)
               : 0.0;
  }
};

class Engine {
 public:
  explicit Engine(EngineConfig cfg = {});
  ~Engine();  ///< shutdown(/*drain=*/true)

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Validate, resolve the shared mesh bundle, and enqueue. Blocks under
  /// backpressure (or throws QueueFull in reject mode); throws
  /// model::ConfigError on an unrealizable config.
  RunTicket submit(RunRequest req);

  /// Stop accepting work and join the workers. With \p drain, queued
  /// members still run; without, they terminate as Cancelled. Idempotent.
  void shutdown(bool drain = true);

  EngineStats stats() const;
  /// Engine-level summary: config + the EngineStats fields as a report.
  obs::Report summary_report() const;

  /// Install a hook called from a worker thread (outside engine locks)
  /// each time a member reaches a terminal state. One hook; set it
  /// before submitting. The server layer uses it to nudge its lifecycle
  /// thread instead of polling handles.
  void set_member_hook(std::function<void(std::uint64_t, RunState)> hook);

  /// The shared immutable bundle for a shape (built on first use).
  std::shared_ptr<const model::MeshBundle> bundle(int ne, int nranks = 1);

  const EngineConfig& config() const { return cfg_; }

 private:
  struct Job {
    RunTicket handle;
    RunRequest request;
    /// Registry entry backing request.scenario (registry entries are
    /// never erased, so the pointer stays valid); nullptr for plain
    /// config-only requests.
    const scenario::Scenario* scenario_def = nullptr;
    std::shared_ptr<const model::MeshBundle> bundle;
    std::chrono::steady_clock::time_point submitted;
  };

  void worker_loop(int worker);
  void execute(Job& job, int worker);
  void notify_terminal(std::uint64_t id, RunState s);

  /// One (pool, group) seat handed to a placed member.
  struct CgSeat {
    int pool = -1;
    int group = -1;
    bool valid() const { return pool >= 0; }
  };
  /// Pick a seat under the placement policy and bump its occupancy
  /// (invalid seat when the engine owns no pools).
  CgSeat acquire_seat();
  void release_seat(const CgSeat& seat);

  EngineConfig cfg_;
  BoundedQueue<Job> queue_;
  std::vector<std::thread> workers_;
  std::chrono::steady_clock::time_point epoch_;
  std::atomic<bool> discard_{false};  ///< drop (don't run) drained jobs
  std::atomic<std::uint64_t> next_id_{1};

  mutable std::mutex stats_mu_;
  EngineStats counters_;  ///< mutable fields; wall/depth filled at snapshot

  // Core-group placement (immutable pool vector after construction;
  // occupancy guarded by placement_mu_).
  std::vector<std::shared_ptr<sw::CgPool>> pools_;
  mutable std::mutex placement_mu_;
  std::vector<std::vector<int>> occupancy_;  ///< members per (pool, group)
  int groups_busy_ = 0;
  int groups_busy_high_water_ = 0;

  std::mutex hook_mu_;
  std::function<void(std::uint64_t, RunState)> member_hook_;

  mutable std::mutex bundles_mu_;
  std::map<std::pair<int, int>, std::shared_ptr<const model::MeshBundle>>
      bundles_;
  std::size_t bytes_unshared_ = 0;

  std::mutex shutdown_mu_;
  bool shut_down_ = false;
};

}  // namespace svc
