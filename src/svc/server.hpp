#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "svc/admission.hpp"
#include "svc/engine.hpp"

/// \file server.hpp
/// svc::Server — the long-running hardened front-end over svc::Engine.
///
/// The engine is a batch machine: submit, wait, read results. A service
/// deployment needs the layer above it — the part that stays up. The
/// server owns an engine and adds what an always-on ensemble service
/// needs:
///
///   * admission control: named tenants with quotas and priority tiers;
///     every submission gets a typed verdict (Admitted / Throttled /
///     Rejected) before it can touch the engine queue;
///   * supervised retries: a Faulted member is re-submitted after an
///     exponential backoff with deterministic jitter, resuming from its
///     last checkpoint chain rather than from step 0, up to a bounded
///     attempt budget;
///   * graceful drain: stop admitting, cancel-and-checkpoint in-flight
///     members, park the incomplete ones, and shut the engine down;
///   * restart: a fresh engine re-admits every parked member from its
///     checkpoint, and the final state digests are identical to an
///     uninterrupted run;
///   * a metrics snapshot (obs::Report JSON, plus a scrape-friendly flat
///     key/value rendering) that folds the live engine's stats into the
///     totals retired by previous drain cycles.
///
/// Lifecycle state machine (see DESIGN.md §13):
///   kAdmitting --drain()--> kDraining --(drained)--> kStopped
///   kStopped --restart()--> kAdmitting        (any number of cycles)

namespace svc {

/// How the server retries Faulted members. Delays are exponential with
/// deterministic jitter: attempt k (k >= 1 retries) waits
///   min(backoff_base_s * 2^(k-1), backoff_max_s) * (1 + jitter_frac * u)
/// where u in [-1, 1) is a hash of (jitter_seed, member name, k) — the
/// same seed and member always produce the same schedule, so soak runs
/// are reproducible.
struct RetryPolicy {
  int max_attempts = 3;         ///< total attempts, first run included
  double backoff_base_s = 0.5;  ///< first retry delay (unscaled)
  double backoff_max_s = 8.0;   ///< delay ceiling (unscaled)
  double jitter_frac = 0.25;    ///< relative jitter amplitude, [0, 1]
  std::uint64_t jitter_seed = 0x53574341ull;  // "SWCA"
  /// Wall multiplier applied when actually sleeping. 1: real time.
  /// 0: virtual time — the unscaled schedule is still computed and
  /// recorded per member, but retries fire immediately (soak benches).
  double sleep_scale = 1.0;

  /// The unscaled delay before retry \p attempt (1-based) of \p member.
  double delay_s(const std::string& member, int attempt) const;
};

enum class ServerState : std::uint8_t {
  kAdmitting = 0,  ///< accepting submissions
  kDraining,       ///< drain() in progress: no admissions, parking members
  kStopped         ///< engine down; restart() brings it back
};

std::string_view to_string(ServerState s);

/// Where one member is in its supervised life.
enum class MemberPhase : std::uint8_t {
  kActive = 0,  ///< queued or running in the engine
  kBackoff,     ///< faulted; waiting out its retry delay
  kParked,      ///< drained with work remaining; resumes on restart()
  kDone         ///< terminal: completed, retries exhausted, or cancelled
};

std::string_view to_string(MemberPhase p);

/// Snapshot of one member's supervision record.
struct MemberStatus {
  std::string name;
  std::string tenant;
  MemberPhase phase = MemberPhase::kActive;
  Admission admission = Admission::kRejected;
  int attempts = 0;              ///< engine submissions so far
  int restarts = 0;              ///< drain/restart cycles survived
  RunState last_state = RunState::kQueued;
  std::uint32_t state_crc = 0;   ///< digest of the last terminal result
  int resumed_from = 0;          ///< step the last attempt restored at
  std::string error;             ///< last fault message, if any
  std::vector<double> retry_delays_s;  ///< recorded unscaled schedule
};

struct ServerConfig {
  EngineConfig engine;
  RetryPolicy retry;
  /// Directory for per-member checkpoint bases ("<dir>/<member>.ck").
  /// Members that already name a checkpoint_base keep it. Empty: the
  /// server assigns no checkpoints — retries and restarts then re-run
  /// members from step 0 (still digest-correct, just slower).
  std::string checkpoint_dir;
  /// Cadence (steps) applied to member configs that have none; gives
  /// faulted members something to resume from mid-run.
  int checkpoint_freq = 8;
  /// Delta-chain full-image interval for sequential members.
  int ckpt_full_interval = 4;
};

/// The long-running service front-end. All public methods are thread
/// safe. Destruction drains (members still in flight are checkpointed
/// and parked, never silently dropped).
class Server {
 public:
  explicit Server(ServerConfig cfg = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Provision (or update) a tenant before it may submit.
  void add_tenant(const std::string& tenant, TenantQuota quota);

  /// The admission outcome of one submission. On kRejected the ticket
  /// is null and reason says why; otherwise the member is in the engine
  /// (possibly at a demoted priority when kThrottled).
  struct SubmitOutcome {
    Admission admission = Admission::kRejected;
    int priority = 0;
    std::string reason;
    RunTicket ticket;
  };

  /// Admit and enqueue one member under \p tenant. Member names must be
  /// unique for the server's lifetime (they key checkpoint bases and
  /// supervision records). The server overrides req.priority with the
  /// verdict's, assigns a checkpoint base/cadence when the config lacks
  /// one, and sets checkpoint_on_exit so drains can park the member.
  SubmitOutcome submit(const std::string& tenant, const std::string& member,
                       RunRequest req);

  /// Block until no member is kActive or kBackoff (everything is done
  /// or parked). Returns immediately on an idle server.
  void wait_idle();

  /// Graceful drain: stop admitting, cancel every in-engine member
  /// (running ones checkpoint at their stop step), park the incomplete
  /// ones, fold the engine's stats into the retired totals, and shut
  /// the engine down. Blocking; idempotent. State ends kStopped.
  void drain();

  /// Bring up a fresh engine and re-submit every parked member with
  /// resume=true — each continues from its checkpoint chain and must
  /// produce a final digest identical to an uninterrupted run. State
  /// returns to kAdmitting. Throws std::logic_error unless kStopped.
  void restart();

  ServerState state() const;
  MemberStatus member(const std::string& name) const;
  std::vector<MemberStatus> members() const;
  /// Engine counters: the live engine's snapshot folded into the totals
  /// retired by previous drain cycles.
  EngineStats engine_stats() const;
  std::uint64_t retries() const;   ///< re-submissions after faults
  std::uint64_t restarts() const;  ///< completed drain/restart cycles

  /// Point-in-time metrics document: server state, per-phase member
  /// counts, per-tenant admission counters, retry totals, and the
  /// folded engine stats.
  obs::Report metrics() const;
  /// metrics() rendered as scrape-friendly "path value" lines (see
  /// obs::Report::flat), namespaced under "swcam.".
  std::string metrics_flat() const;

  const ServerConfig& config() const { return cfg_; }

 private:
  struct Member {
    std::string name;
    std::string tenant;
    RunRequest request;         ///< as submitted (server fields applied)
    RunTicket ticket;           ///< live handle of the current attempt
    MemberPhase phase = MemberPhase::kActive;
    Admission admission = Admission::kRejected;
    int priority = 0;
    int attempts = 0;
    int restarts = 0;
    RunState last_state = RunState::kQueued;
    std::uint32_t state_crc = 0;
    int resumed_from = 0;
    std::string error;
    std::vector<double> retry_delays_s;
    std::chrono::steady_clock::time_point retry_at{};  ///< kBackoff only
  };

  void lifecycle_loop();
  /// Install the terminal-member hook on a freshly built engine_.
  void attach_engine();
  /// Fold a terminal attempt into the member record; schedules a retry
  /// (kBackoff) or finishes it. Caller holds mu_.
  void handle_terminal(Member& m);
  /// Re-submit \p name with resume=true. Takes submit_mu_ then mu_.
  void resubmit(const std::string& name);
  void apply_server_fields(const std::string& member, RunRequest& req) const;
  MemberStatus status_of(const Member& m) const;
  static void fold(EngineStats& into, const EngineStats& s);

  ServerConfig cfg_;

  /// Serializes engine submissions against drain: whoever holds it may
  /// be blocked in engine->submit under backpressure, and drain waits
  /// for that to land before closing the queue. Taken before mu_.
  std::mutex submit_mu_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  ServerState state_ = ServerState::kAdmitting;
  std::unique_ptr<Engine> engine_;
  AdmissionController admission_;
  std::map<std::string, Member> members_;
  EngineStats retired_;         ///< stats folded from drained engines
  std::uint64_t retries_ = 0;
  std::uint64_t restarts_ = 0;
  bool stop_ = false;           ///< lifecycle thread shutdown flag
  bool terminal_dirty_ = false; ///< engine hook saw a terminal member

  std::thread lifecycle_;
};

}  // namespace svc
