#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

/// \file admission.hpp
/// Per-tenant admission control for the svc::Server front-end.
///
/// The engine's bounded queue is a global backpressure valve; admission
/// control is the policy layer above it. Each tenant (a named client of
/// the service — "ops", "research", a batch pipeline) gets a quota:
/// a hard cap on concurrently active members, a soft cap past which new
/// members are still admitted but demoted to a lower priority, and a
/// base priority tier. The controller is pure bookkeeping — no locks, no
/// time — so the server can hold it under its own mutex and the verdict
/// logic stays unit-testable in isolation.

namespace svc {

/// What the server decided about one submission.
enum class Admission : std::uint8_t {
  kAdmitted = 0,  ///< within quota, enqueued at the tenant's tier
  kThrottled,     ///< past the soft cap: enqueued at demoted priority
  kRejected       ///< past the hard cap (or unknown tenant): not enqueued
};

std::string_view to_string(Admission a);

/// One tenant's standing limits.
struct TenantQuota {
  /// Hard cap on members concurrently active (queued or running through
  /// the server). At the cap a submission is Rejected. <= 0: unlimited.
  int max_active = 0;
  /// Soft cap: at or past this many active members a new submission is
  /// still admitted, but at throttle_priority instead of the tier.
  /// <= 0 or >= max_active semantics: disabled.
  int soft_active = 0;
  /// Base priority for this tenant's members (higher runs first).
  int tier = 0;
  /// Priority used for Throttled members; should be below every tier.
  int throttle_priority = -1;
};

/// The verdict plus the priority the member should carry into the queue.
struct AdmissionVerdict {
  Admission decision = Admission::kRejected;
  int priority = 0;
  std::string reason;  ///< human-readable, for the rejection error
};

/// Book-keeps active member counts per tenant and issues verdicts.
/// Not thread safe by design: the owner serializes access.
class AdmissionController {
 public:
  /// Register (or replace) a tenant's quota. Unknown tenants are
  /// rejected outright, so every client must be provisioned first.
  void set_quota(const std::string& tenant, TenantQuota q) {
    tenants_[tenant].quota = q;
  }
  bool has_tenant(const std::string& tenant) const {
    return tenants_.count(tenant) != 0;
  }

  /// Decide on one submission. Does NOT change counts: the caller calls
  /// on_admitted() only once the member is actually enqueued (the engine
  /// queue may still reject, and a failed enqueue must not leak a slot).
  AdmissionVerdict decide(const std::string& tenant) const {
    AdmissionVerdict v;
    auto it = tenants_.find(tenant);
    if (it == tenants_.end()) {
      v.decision = Admission::kRejected;
      v.reason = "unknown tenant \"" + tenant + "\"";
      return v;
    }
    const TenantQuota& q = it->second.quota;
    const int active = it->second.active;
    if (q.max_active > 0 && active >= q.max_active) {
      v.decision = Admission::kRejected;
      v.reason = "tenant \"" + tenant + "\" at hard cap (" +
                 std::to_string(active) + "/" +
                 std::to_string(q.max_active) + " active)";
      return v;
    }
    if (q.soft_active > 0 && active >= q.soft_active) {
      v.decision = Admission::kThrottled;
      v.priority = q.throttle_priority;
      v.reason = "tenant \"" + tenant + "\" past soft cap (" +
                 std::to_string(active) + "/" +
                 std::to_string(q.soft_active) + "), demoted";
      return v;
    }
    v.decision = Admission::kAdmitted;
    v.priority = q.tier;
    return v;
  }

  /// A member of \p tenant entered the system (post-enqueue).
  void on_admitted(const std::string& tenant) { ++tenants_[tenant].active; }
  /// A member of \p tenant left the system for good (Completed, retries
  /// exhausted, or cancelled). Parked members keep their slot — they
  /// still belong to the tenant across a drain/restart cycle.
  void on_retired(const std::string& tenant) {
    auto it = tenants_.find(tenant);
    if (it != tenants_.end() && it->second.active > 0) --it->second.active;
  }

  int active(const std::string& tenant) const {
    auto it = tenants_.find(tenant);
    return it == tenants_.end() ? 0 : it->second.active;
  }

  /// Per-tenant admission counters for the metrics snapshot.
  struct TenantCounters {
    std::uint64_t admitted = 0, throttled = 0, rejected = 0;
  };
  void count(const std::string& tenant, Admission a) {
    auto& c = tenants_[tenant].counters;
    switch (a) {
      case Admission::kAdmitted: ++c.admitted; break;
      case Admission::kThrottled: ++c.throttled; break;
      case Admission::kRejected: ++c.rejected; break;
    }
  }
  const std::map<std::string, TenantQuota> quotas() const {
    std::map<std::string, TenantQuota> out;
    for (const auto& [name, t] : tenants_) out.emplace(name, t.quota);
    return out;
  }
  TenantCounters counters(const std::string& tenant) const {
    auto it = tenants_.find(tenant);
    return it == tenants_.end() ? TenantCounters{} : it->second.counters;
  }

 private:
  struct Tenant {
    TenantQuota quota;
    int active = 0;
    TenantCounters counters;
  };
  std::map<std::string, Tenant> tenants_;
};

inline std::string_view to_string(Admission a) {
  switch (a) {
    case Admission::kAdmitted: return "admitted";
    case Admission::kThrottled: return "throttled";
    case Admission::kRejected: return "rejected";
  }
  return "?";
}

}  // namespace svc
