#include "svc/server.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

/// \file server.cpp
/// Construction, admission-side submit, and observability. The
/// supervision state machine (retries, drain, restart) lives in
/// lifecycle.cpp.
///
/// Locking: submit_mu_ serializes every path that calls into
/// engine_->submit or replaces engine_ (submit, resubmit, drain,
/// restart) so a drain never closes the queue under a blocked
/// submitter. mu_ guards all member/admission/stats state and is taken
/// after submit_mu_, never before. The engine's terminal hook takes
/// only mu_, and the engine calls it outside its own locks.

namespace svc {

namespace {

/// splitmix64-style finalizer: the jitter hash.
std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ull;
  x ^= x >> 33;
  return x;
}

}  // namespace

double RetryPolicy::delay_s(const std::string& member, int attempt) const {
  if (backoff_base_s <= 0.0 || attempt < 1) return 0.0;
  double d = backoff_base_s;
  for (int i = 1; i < attempt && d < backoff_max_s; ++i) d *= 2.0;
  d = std::min(d, backoff_max_s);
  std::uint64_t h = jitter_seed;
  for (char c : member) h = mix64(h ^ static_cast<unsigned char>(c));
  h = mix64(h ^ static_cast<std::uint64_t>(attempt));
  // u in [-1, 1) from the top 53 bits.
  const double u =
      static_cast<double>(h >> 11) / static_cast<double>(1ull << 52) - 1.0;
  return d * (1.0 + jitter_frac * u);
}

std::string_view to_string(ServerState s) {
  switch (s) {
    case ServerState::kAdmitting: return "admitting";
    case ServerState::kDraining: return "draining";
    case ServerState::kStopped: return "stopped";
  }
  return "?";
}

std::string_view to_string(MemberPhase p) {
  switch (p) {
    case MemberPhase::kActive: return "active";
    case MemberPhase::kBackoff: return "backoff";
    case MemberPhase::kParked: return "parked";
    case MemberPhase::kDone: return "done";
  }
  return "?";
}

// -- Server ------------------------------------------------------------------

Server::Server(ServerConfig cfg) : cfg_(std::move(cfg)) {
  engine_ = std::make_unique<Engine>(cfg_.engine);
  attach_engine();
  lifecycle_ = std::thread([this] { lifecycle_loop(); });
}

Server::~Server() {
  drain();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
    cv_.notify_all();
  }
  lifecycle_.join();
}

void Server::attach_engine() {
  engine_->set_member_hook([this](std::uint64_t, RunState) {
    std::lock_guard<std::mutex> lock(mu_);
    terminal_dirty_ = true;
    cv_.notify_all();
  });
}

void Server::add_tenant(const std::string& tenant, TenantQuota quota) {
  std::lock_guard<std::mutex> lock(mu_);
  admission_.set_quota(tenant, quota);
}

void Server::apply_server_fields(const std::string& member,
                                 RunRequest& req) const {
  // Every server member parks at its stop step on an early exit, so a
  // drain can always resume it later.
  req.checkpoint_on_exit = true;
  if (req.config.checkpoint_base.empty() && !cfg_.checkpoint_dir.empty()) {
    req.config.checkpoint_base = cfg_.checkpoint_dir + "/" + member + ".ck";
  }
  if (req.config.checkpoint_base.empty()) return;  // nowhere to checkpoint
  if (req.config.checkpoint_freq <= 0) {
    req.config.checkpoint_freq = cfg_.checkpoint_freq;
  }
  if (req.config.nranks == 1 && req.config.ckpt_full_interval <= 0) {
    req.config.ckpt_full_interval = cfg_.ckpt_full_interval;
  }
}

Server::SubmitOutcome Server::submit(const std::string& tenant,
                                     const std::string& member,
                                     RunRequest req) {
  std::lock_guard<std::mutex> submit_lock(submit_mu_);
  SubmitOutcome out;
  AdmissionVerdict verdict;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const bool known = admission_.has_tenant(tenant);
    if (state_ != ServerState::kAdmitting) {
      out.reason = "server is " + std::string(to_string(state_)) +
                   "; not admitting";
      if (known) admission_.count(tenant, Admission::kRejected);
      return out;
    }
    if (members_.count(member) != 0) {
      out.reason = "member \"" + member + "\" already exists";
      if (known) admission_.count(tenant, Admission::kRejected);
      return out;
    }
    verdict = admission_.decide(tenant);
    if (verdict.decision == Admission::kRejected) {
      out.reason = verdict.reason;
      if (known) admission_.count(tenant, Admission::kRejected);
      return out;
    }
  }

  apply_server_fields(member, req);
  req.priority = verdict.priority;
  RunTicket ticket;
  try {
    ticket = engine_->submit(req);
  } catch (const QueueFull& e) {
    std::lock_guard<std::mutex> lock(mu_);
    admission_.count(tenant, Admission::kRejected);
    out.reason = e.what();
    return out;
  }

  std::lock_guard<std::mutex> lock(mu_);
  Member m;
  m.name = member;
  m.tenant = tenant;
  m.request = std::move(req);
  m.ticket = ticket;
  m.phase = MemberPhase::kActive;
  m.admission = verdict.decision;
  m.priority = verdict.priority;
  m.attempts = 1;
  members_.emplace(member, std::move(m));
  admission_.on_admitted(tenant);
  admission_.count(tenant, verdict.decision);
  out.admission = verdict.decision;
  out.priority = verdict.priority;
  out.reason = verdict.reason;
  out.ticket = std::move(ticket);
  return out;
}

// -- observability -----------------------------------------------------------

ServerState Server::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

MemberStatus Server::status_of(const Member& m) const {
  MemberStatus s;
  s.name = m.name;
  s.tenant = m.tenant;
  s.phase = m.phase;
  s.admission = m.admission;
  s.attempts = m.attempts;
  s.restarts = m.restarts;
  s.last_state = m.last_state;
  s.state_crc = m.state_crc;
  s.resumed_from = m.resumed_from;
  s.error = m.error;
  s.retry_delays_s = m.retry_delays_s;
  return s;
}

MemberStatus Server::member(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = members_.find(name);
  if (it == members_.end()) {
    throw std::out_of_range("svc::Server: no member \"" + name + "\"");
  }
  return status_of(it->second);
}

std::vector<MemberStatus> Server::members() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MemberStatus> out;
  out.reserve(members_.size());
  for (const auto& [name, m] : members_) out.push_back(status_of(m));
  return out;
}

void Server::fold(EngineStats& into, const EngineStats& s) {
  into.submitted += s.submitted;
  into.completed += s.completed;
  into.faulted += s.faulted;
  into.cancelled += s.cancelled;
  into.deadline += s.deadline;
  into.rejected_full += s.rejected_full;
  into.cancelled_queued += s.cancelled_queued;
  into.resumed += s.resumed;
  into.member_steps += s.member_steps;
  into.wall_s += s.wall_s;
  into.busy_s += s.busy_s;
  into.queue_depth = s.queue_depth;  // the live engine's, not a sum
  into.queue_high_water = std::max(into.queue_high_water,
                                   s.queue_high_water);
  into.workers = s.workers;
  into.mesh_bundles = s.mesh_bundles;
  into.mesh_bundle_bytes = s.mesh_bundle_bytes;
  into.mesh_bytes_unshared = s.mesh_bytes_unshared;
  into.state_samples += s.state_samples;
  into.state_logical_bytes += s.state_logical_bytes;
  into.state_resident_bytes += s.state_resident_bytes;
  into.state_chunks += s.state_chunks;
  into.state_shared_chunks += s.state_shared_chunks;
  into.checkpoint_saves += s.checkpoint_saves;
  into.checkpoint_bytes += s.checkpoint_bytes;
}

EngineStats Server::engine_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  EngineStats out = retired_;
  if (engine_ != nullptr) fold(out, engine_->stats());
  return out;
}

std::uint64_t Server::retries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return retries_;
}

std::uint64_t Server::restarts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return restarts_;
}

obs::Report Server::metrics() const {
  const EngineStats es = engine_stats();
  std::lock_guard<std::mutex> lock(mu_);
  obs::Report rep("svc_server");
  rep.root()
      .set("state", to_string(state_))
      .set("retries", retries_)
      .set("restarts", restarts_);

  int active = 0, backoff = 0, parked = 0, done = 0;
  for (const auto& [name, m] : members_) {
    switch (m.phase) {
      case MemberPhase::kActive: ++active; break;
      case MemberPhase::kBackoff: ++backoff; break;
      case MemberPhase::kParked: ++parked; break;
      case MemberPhase::kDone: ++done; break;
    }
  }
  rep.root()
      .obj("members")
      .set("total", static_cast<std::uint64_t>(members_.size()))
      .set("active", active)
      .set("backoff", backoff)
      .set("parked", parked)
      .set("done", done);

  obs::Json& tenants = rep.root().obj("tenants");
  for (const auto& [name, quota] : admission_.quotas()) {
    const auto c = admission_.counters(name);
    tenants.obj(name)
        .set("tier", quota.tier)
        .set("active", admission_.active(name))
        .set("admitted", c.admitted)
        .set("throttled", c.throttled)
        .set("rejected", c.rejected);
  }

  rep.root()
      .obj("engine")
      .set("submitted", es.submitted)
      .set("completed", es.completed)
      .set("faulted", es.faulted)
      .set("cancelled", es.cancelled)
      .set("deadline", es.deadline)
      .set("rejected_full", es.rejected_full)
      .set("cancelled_queued", es.cancelled_queued)
      .set("resumed", es.resumed)
      .set("member_steps", es.member_steps)
      .set("busy_s", es.busy_s)
      .set("queue_depth", static_cast<std::uint64_t>(es.queue_depth))
      .set("queue_high_water",
           static_cast<std::uint64_t>(es.queue_high_water))
      .set("checkpoint_saves", es.checkpoint_saves)
      .set("checkpoint_bytes", es.checkpoint_bytes);
  return rep;
}

std::string Server::metrics_flat() const { return metrics().flat("swcam"); }

}  // namespace svc
