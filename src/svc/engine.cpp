#include "svc/engine.hpp"

#include "homme/checkpoint.hpp"
#include "sw/cg_pool.hpp"

namespace svc {

namespace {

const char* backend_name(model::SessionConfig::Backend b) {
  return b == model::SessionConfig::Backend::kPipeline ? "pipeline" : "host";
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

std::string_view to_string(RunState s) {
  switch (s) {
    case RunState::kQueued: return "queued";
    case RunState::kRunning: return "running";
    case RunState::kCompleted: return "completed";
    case RunState::kFaulted: return "faulted";
    case RunState::kCancelled: return "cancelled";
    case RunState::kDeadline: return "deadline";
  }
  return "?";
}

// -- RunHandle ---------------------------------------------------------------

void RunHandle::cancel() {
  cancel_.store(true, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ == RunState::kQueued) {
    state_ = RunState::kCancelled;
    result_.state = RunState::kCancelled;
    result_.error = "cancelled before execution";
    cv_.notify_all();
  }
}

const RunResult& RunHandle::wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return is_terminal(state_); });
  return result_;
}

bool RunHandle::begin_running(int worker) {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ != RunState::kQueued) return false;
  state_ = RunState::kRunning;
  result_.worker = worker;
  return true;
}

void RunHandle::finish(RunResult res) {
  std::lock_guard<std::mutex> lock(mu_);
  result_ = std::move(res);
  state_ = result_.state;
  cv_.notify_all();
}

// -- Engine ------------------------------------------------------------------

Engine::Engine(EngineConfig cfg)
    : cfg_(cfg),
      queue_(cfg.queue_capacity),
      epoch_(std::chrono::steady_clock::now()) {
  if (cfg_.workers < 1) {
    throw model::ConfigError("EngineConfig: workers must be >= 1");
  }
  if (cfg_.queue_capacity < 1) {
    throw model::ConfigError("EngineConfig: queue_capacity must be >= 1");
  }
  if (cfg_.cg_pools < 0) {
    throw model::ConfigError("EngineConfig: cg_pools must be >= 0");
  }
  if (cfg_.cg_pools > 0 && cfg_.core_groups_per_pool < 1) {
    throw model::ConfigError(
        "EngineConfig: core_groups_per_pool must be >= 1");
  }
  pools_.reserve(static_cast<std::size_t>(cfg_.cg_pools));
  for (int p = 0; p < cfg_.cg_pools; ++p) {
    pools_.push_back(std::make_shared<sw::CgPool>(cfg_.core_groups_per_pool));
    occupancy_.emplace_back(
        static_cast<std::size_t>(cfg_.core_groups_per_pool), 0);
  }
  counters_.cg_pools = pools_.size();
  counters_.workers = cfg_.workers;
  workers_.reserve(static_cast<std::size_t>(cfg_.workers));
  for (int w = 0; w < cfg_.workers; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

Engine::~Engine() { shutdown(/*drain=*/true); }

std::shared_ptr<const model::MeshBundle> Engine::bundle(int ne, int nranks) {
  const auto key = std::make_pair(ne, nranks);
  {
    std::lock_guard<std::mutex> lock(bundles_mu_);
    auto it = bundles_.find(key);
    if (it != bundles_.end()) return it->second;
  }
  // Build outside the lock (construction is the expensive part), then
  // keep whichever copy won the race so every member shares one.
  auto built = model::MeshBundle::build(ne, nranks);
  std::lock_guard<std::mutex> lock(bundles_mu_);
  auto [it, inserted] = bundles_.emplace(key, std::move(built));
  return it->second;
}

RunTicket Engine::submit(RunRequest req) {
  Job job;
  if (!req.scenario.empty()) {
    // Resolve the named workload before validation so an unknown name
    // surfaces as scenario::NotFound at the submit site, not on a
    // worker. The resolved pointer rides with the job for forcing and
    // invariant checks during execution.
    const scenario::Scenario& sc = scenario::get(req.scenario);
    req.config = sc.config(req.overrides, req.member);
    job.scenario_def = &sc;
  }
  req.config.validate();
  if (req.steps < 0) {
    throw model::ConfigError("RunRequest: steps must be >= 0");
  }
  job.handle = RunTicket(new RunHandle(
      next_id_.fetch_add(1, std::memory_order_relaxed)));
  job.bundle = bundle(req.config.ne, req.config.nranks);
  const std::size_t bundle_bytes = job.bundle->bytes();
  job.request = std::move(req);
  job.submitted = std::chrono::steady_clock::now();
  RunTicket ticket = job.handle;

  const int priority = job.request.priority;
  const auto pushed = queue_.push(std::move(job), priority,
                                  /*block=*/!cfg_.reject_when_full);
  if (pushed == BoundedQueue<Job>::Push::kClosed) {
    throw std::runtime_error("svc::Engine: submit after shutdown");
  }
  if (pushed == BoundedQueue<Job>::Push::kFull) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++counters_.rejected_full;
    throw QueueFull("svc::Engine: submission queue is full (" +
                    std::to_string(queue_.capacity()) + " pending)");
  }
  // Accounting only after a successful push: a rejected request must not
  // leak into the unshared-bytes or submitted counters.
  {
    std::lock_guard<std::mutex> lock(bundles_mu_);
    bytes_unshared_ += bundle_bytes;
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++counters_.submitted;
  }
  return ticket;
}

void Engine::shutdown(bool drain) {
  {
    std::lock_guard<std::mutex> lock(shutdown_mu_);
    if (shut_down_) return;
    shut_down_ = true;
  }
  if (!drain) discard_.store(true, std::memory_order_relaxed);
  queue_.close();
  for (auto& t : workers_) t.join();
  workers_.clear();
}

void Engine::set_member_hook(
    std::function<void(std::uint64_t, RunState)> hook) {
  std::lock_guard<std::mutex> lock(hook_mu_);
  member_hook_ = std::move(hook);
}

void Engine::notify_terminal(std::uint64_t id, RunState s) {
  std::function<void(std::uint64_t, RunState)> hook;
  {
    std::lock_guard<std::mutex> lock(hook_mu_);
    hook = member_hook_;
  }
  if (hook) hook(id, s);
}

void Engine::worker_loop(int worker) {
  while (auto job = queue_.pop()) {
    if (discard_.load(std::memory_order_relaxed)) {
      job->handle->cancel();
    }
    if (!job->handle->begin_running(worker)) {
      // Cancelled while queued: the handle is already terminal.
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++counters_.cancelled;
        ++counters_.cancelled_queued;
      }
      notify_terminal(job->handle->id(), RunState::kCancelled);
      continue;
    }
    execute(*job, worker);
  }
}

Engine::CgSeat Engine::acquire_seat() {
  CgSeat seat;
  std::lock_guard<std::mutex> lock(placement_mu_);
  if (pools_.empty()) return seat;
  const bool pack = cfg_.placement == EngineConfig::Placement::kPack;
  int best_pool = -1;
  long best_load = 0;
  for (int p = 0; p < static_cast<int>(pools_.size()); ++p) {
    long load = 0;
    for (int occ : occupancy_[static_cast<std::size_t>(p)]) load += occ;
    // kPack: first pool with a free group, falling back to pool 0 when
    // everything is busy (members then time-share a group behind the
    // per-group lock). kSpread: globally least-loaded pool.
    if (pack) {
      bool has_free = false;
      for (int occ : occupancy_[static_cast<std::size_t>(p)]) {
        if (occ == 0) { has_free = true; break; }
      }
      if (has_free) { best_pool = p; break; }
      if (best_pool < 0) best_pool = 0;
    } else if (best_pool < 0 || load < best_load) {
      best_pool = p;
      best_load = load;
    }
  }
  seat.pool = best_pool;
  auto& occ = occupancy_[static_cast<std::size_t>(best_pool)];
  seat.group = 0;
  for (int g = 1; g < static_cast<int>(occ.size()); ++g) {
    if (occ[static_cast<std::size_t>(g)] <
        occ[static_cast<std::size_t>(seat.group)]) {
      seat.group = g;
    }
  }
  if (occ[static_cast<std::size_t>(seat.group)] == 0) {
    ++groups_busy_;
    groups_busy_high_water_ = std::max(groups_busy_high_water_, groups_busy_);
  }
  ++occ[static_cast<std::size_t>(seat.group)];
  return seat;
}

void Engine::release_seat(const CgSeat& seat) {
  if (!seat.valid()) return;
  std::lock_guard<std::mutex> lock(placement_mu_);
  int& occ = occupancy_[static_cast<std::size_t>(seat.pool)]
                       [static_cast<std::size_t>(seat.group)];
  --occ;
  if (occ == 0) --groups_busy_;
}

void Engine::execute(Job& job, int worker) {
  RunHandle& h = *job.handle;
  const auto t0 = std::chrono::steady_clock::now();

  // Core-group placement: a pipeline member that didn't bring its own
  // pool gets one group of one engine pool for the duration of its run,
  // DMA-contending with members co-located on the same processor.
  CgSeat seat;
  if (!pools_.empty() &&
      job.request.config.backend == model::SessionConfig::Backend::kPipeline &&
      job.request.config.cg_pool == nullptr) {
    seat = acquire_seat();
    job.request.config.cg_pool = pools_[static_cast<std::size_t>(seat.pool)];
    job.request.config.cg_affinity = {seat.group};
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++counters_.placed_members;
  }
  struct SeatGuard {
    Engine* eng;
    const CgSeat& s;
    ~SeatGuard() { eng->release_seat(s); }
  } seat_guard{this, seat};

  const RunRequest& req = job.request;

  RunResult res;
  res.worker = worker;
  res.queue_wait_s =
      std::chrono::duration<double>(t0 - job.submitted).count();
  res.state = RunState::kCompleted;

  homme::StoreStats store{};
  homme::AsyncCheckpointWriter::Stats ckpt{};
  bool sampled = false;

  try {
    model::Session session(req.config, job.bundle);
    if (req.resume && session.try_resume()) {
      res.resumed_from = session.step_count();
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++counters_.resumed;
    }
    // Seeding forcing events (start 0) fire before the first step of a
    // fresh member; a resumed member restarts mid-schedule.
    if (job.scenario_def != nullptr && session.step_count() == 0) {
      scenario::fire_forcing(*job.scenario_def, session, 0);
    }
    // steps is the total target, so a resumed member runs only the
    // remainder; a fresh session starts at step_count 0 and this loop
    // degenerates to the plain fixed-budget form.
    while (session.step_count() < req.steps) {
      if (h.cancel_requested()) {
        res.state = RunState::kCancelled;
        break;
      }
      if (req.deadline_s > 0.0 &&
          seconds_since(job.submitted) > req.deadline_s) {
        res.state = RunState::kDeadline;
        break;
      }
      session.step();
      if (job.scenario_def != nullptr) {
        scenario::fire_forcing(*job.scenario_def, session,
                               session.step_count());
      }
      session.maybe_checkpoint();
      ++res.steps_done;
      if (req.step_stall_s > 0.0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double>(req.step_stall_s));
      }
    }
    // A completed scenario member must satisfy its scenario's declared
    // invariants — a violation is a fault, same as a throw mid-run.
    if (res.state == RunState::kCompleted && job.scenario_def != nullptr) {
      if (auto why = scenario::check_invariants(*job.scenario_def, session)) {
        res.state = RunState::kFaulted;
        res.error = "invariant violation: " + *why;
      }
    }
    if (res.state != RunState::kCompleted && req.checkpoint_on_exit) {
      session.checkpoint_now();  // park at the exact stop step
    }
    res.fallbacks = session.fallbacks();
    store = session.store_stats();
    ckpt = session.checkpoint_stats();
    sampled = true;
    res.state_crc = model::state_digest(session.state(),
                                        session.step_count());
    if (res.state == RunState::kCompleted) {
      res.diagnostics = session.diagnose();
    }
    if (req.keep_state) res.final_state = session.state();
    if (req.config.trace) res.report.add_summary(session.summary());
  } catch (const std::exception& e) {
    res.state = RunState::kFaulted;
    res.error = e.what();
  }
  res.wall_s = seconds_since(t0);

  res.report.config()
      .set("ne", req.config.ne)
      .set("nlev", req.config.nlev)
      .set("qsize", req.config.qsize)
      .set("nranks", req.config.nranks)
      .set("backend", backend_name(req.config.backend))
      .set("scenario", req.scenario)
      .set("member", req.member)
      .set("steps", req.steps)
      .set("priority", req.priority);
  res.report.root()
      .set("id", h.id())
      .set("state", to_string(res.state))
      .set("error", res.error)
      .set("steps_done", res.steps_done)
      .set("wall_s", res.wall_s)
      .set("queue_wait_s", res.queue_wait_s)
      .set("worker", res.worker)
      .set("fallbacks", res.fallbacks)
      .set("resumed_from", res.resumed_from)
      .set("state_crc", static_cast<std::uint64_t>(res.state_crc));

  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    counters_.member_steps += static_cast<std::uint64_t>(res.steps_done);
    counters_.busy_s += res.wall_s;
    if (sampled) {
      ++counters_.state_samples;
      counters_.state_logical_bytes += store.logical_bytes;
      counters_.state_resident_bytes += store.resident_bytes;
      counters_.state_chunks += store.chunks;
      counters_.state_shared_chunks += store.shared_chunks;
      counters_.checkpoint_saves += ckpt.saves;
      counters_.checkpoint_bytes += ckpt.bytes_written;
    }
    switch (res.state) {
      case RunState::kCompleted: ++counters_.completed; break;
      case RunState::kFaulted: ++counters_.faulted; break;
      case RunState::kCancelled: ++counters_.cancelled; break;
      case RunState::kDeadline: ++counters_.deadline; break;
      default: break;
    }
  }
  const RunState final_state = res.state;
  h.finish(std::move(res));
  notify_terminal(h.id(), final_state);
}

EngineStats Engine::stats() const {
  EngineStats out;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    out = counters_;
  }
  out.wall_s = seconds_since(epoch_);
  out.queue_depth = queue_.depth();
  out.queue_high_water = queue_.high_water();
  {
    std::lock_guard<std::mutex> lock(placement_mu_);
    out.cg_groups_busy_high_water = groups_busy_high_water_;
  }
  for (const auto& pool : pools_) {
    const sw::MemoryContention::Stats cs = pool->contention().stats();
    out.cg_stream_high_water =
        std::max(out.cg_stream_high_water, cs.stream_high_water);
    out.cg_contended_ops += cs.contended_ops;
    out.cg_contended_bytes += cs.contended_bytes;
  }
  {
    std::lock_guard<std::mutex> lock(bundles_mu_);
    out.mesh_bundles = bundles_.size();
    for (const auto& [key, b] : bundles_) out.mesh_bundle_bytes += b->bytes();
    out.mesh_bytes_unshared = bytes_unshared_;
  }
  return out;
}

obs::Report Engine::summary_report() const {
  const EngineStats s = stats();
  obs::Report rep("svc_engine");
  rep.config()
      .set("workers", cfg_.workers)
      .set("queue_capacity", static_cast<std::uint64_t>(cfg_.queue_capacity))
      .set("reject_when_full", cfg_.reject_when_full)
      .set("cg_pools", cfg_.cg_pools)
      .set("core_groups_per_pool", cfg_.core_groups_per_pool)
      .set("placement",
           cfg_.placement == EngineConfig::Placement::kPack ? "pack"
                                                            : "spread");
  rep.root()
      .set("submitted", s.submitted)
      .set("completed", s.completed)
      .set("faulted", s.faulted)
      .set("cancelled", s.cancelled)
      .set("deadline", s.deadline)
      .set("rejected_full", s.rejected_full)
      .set("cancelled_queued", s.cancelled_queued)
      .set("resumed", s.resumed)
      .set("member_steps", s.member_steps)
      .set("wall_s", s.wall_s)
      .set("busy_s", s.busy_s)
      .set("member_steps_per_s", s.member_steps_per_s())
      .set("worker_utilization", s.utilization())
      .set("queue_depth", static_cast<std::uint64_t>(s.queue_depth))
      .set("queue_high_water",
           static_cast<std::uint64_t>(s.queue_high_water))
      .set("mesh_bundles", static_cast<std::uint64_t>(s.mesh_bundles))
      .set("mesh_bundle_bytes",
           static_cast<std::uint64_t>(s.mesh_bundle_bytes))
      .set("mesh_bytes_unshared",
           static_cast<std::uint64_t>(s.mesh_bytes_unshared))
      .set("state_samples", s.state_samples)
      .set("state_logical_bytes", s.state_logical_bytes)
      .set("state_resident_bytes", s.state_resident_bytes)
      .set("state_chunks", s.state_chunks)
      .set("state_shared_chunks", s.state_shared_chunks)
      .set("checkpoint_saves", s.checkpoint_saves)
      .set("checkpoint_bytes", s.checkpoint_bytes)
      .set("resident_bytes_per_member", s.resident_bytes_per_member())
      .set("cow_shared_fraction", s.cow_shared_fraction())
      .set("checkpoint_bytes_per_step", s.checkpoint_bytes_per_step())
      .set("placed_members", s.placed_members)
      .set("cg_groups_busy_high_water", s.cg_groups_busy_high_water)
      .set("cg_stream_high_water", s.cg_stream_high_water)
      .set("cg_contended_ops", s.cg_contended_ops)
      .set("cg_contended_bytes", s.cg_contended_bytes);
  return rep;
}

}  // namespace svc
