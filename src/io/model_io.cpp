#include "io/model_io.hpp"

#include <cstring>
#include <fstream>
#include <stdexcept>

namespace io {

namespace {

constexpr char kMagic[8] = {'S', 'W', 'C', 'A', 'M', 'I', 'O', '1'};

void put_i64(std::ostream& os, std::int64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::int64_t get_i64(std::istream& is) {
  std::int64_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  return v;
}

void put_field(std::ostream& os, const Field& f) {
  put_i64(os, static_cast<std::int64_t>(f.name.size()));
  os.write(f.name.data(), static_cast<std::streamsize>(f.name.size()));
  put_i64(os, static_cast<std::int64_t>(f.shape.size()));
  for (auto d : f.shape) put_i64(os, d);
  put_i64(os, static_cast<std::int64_t>(f.data.size()));
  os.write(reinterpret_cast<const char*>(f.data.data()),
           static_cast<std::streamsize>(f.data.size() * sizeof(double)));
}

Field get_field(std::istream& is) {
  Field f;
  const std::int64_t name_len = get_i64(is);
  if (name_len < 0 || name_len > 4096) {
    throw std::runtime_error("model_io: corrupt field name length");
  }
  f.name.resize(static_cast<std::size_t>(name_len));
  is.read(f.name.data(), name_len);
  const std::int64_t rank = get_i64(is);
  if (rank < 0 || rank > 8) {
    throw std::runtime_error("model_io: corrupt field rank");
  }
  f.shape.resize(static_cast<std::size_t>(rank));
  for (auto& d : f.shape) d = get_i64(is);
  const std::int64_t count = get_i64(is);
  if (count < 0) throw std::runtime_error("model_io: corrupt field size");
  f.data.resize(static_cast<std::size_t>(count));
  is.read(reinterpret_cast<char*>(f.data.data()),
          static_cast<std::streamsize>(f.data.size() * sizeof(double)));
  if (!is) throw std::runtime_error("model_io: truncated field " + f.name);
  return f;
}

}  // namespace

HistoryWriter::HistoryWriter(int ne, int nlev, int qsize)
    : ne_(ne), nlev_(nlev), qsize_(qsize) {}

void HistoryWriter::add_surface_diagnostics(const homme::Dims& d,
                                            const homme::State& s) {
  const int nelem = static_cast<int>(s.size());
  Field ps{"ps", {nelem, mesh::kNpp}, {}};
  Field ts{"t_surface", {nelem, mesh::kNpp}, {}};
  ps.data.reserve(static_cast<std::size_t>(nelem) * mesh::kNpp);
  ts.data.reserve(static_cast<std::size_t>(nelem) * mesh::kNpp);
  for (const auto& es : s) {
    for (int k = 0; k < mesh::kNpp; ++k) {
      double p = homme::kPtop;
      for (int lev = 0; lev < d.nlev; ++lev) p += es.dp[homme::fidx(lev, k)];
      ps.data.push_back(p);
      ts.data.push_back(es.T[homme::fidx(d.nlev - 1, k)]);
    }
  }
  add(std::move(ps));
  add(std::move(ts));
}

bool HistoryWriter::write(const std::string& path) const {
  std::ofstream os(path, std::ios::binary);
  if (!os) return false;
  os.write(kMagic, sizeof(kMagic));
  put_i64(os, ne_);
  put_i64(os, nlev_);
  put_i64(os, qsize_);
  put_i64(os, static_cast<std::int64_t>(fields_.size()));
  for (const auto& f : fields_) put_field(os, f);
  return static_cast<bool>(os);
}

HistoryReader::HistoryReader(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("model_io: cannot open " + path);
  char magic[8];
  is.read(magic, sizeof(magic));
  if (!is || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("model_io: bad magic in " + path);
  }
  ne_ = static_cast<int>(get_i64(is));
  nlev_ = static_cast<int>(get_i64(is));
  qsize_ = static_cast<int>(get_i64(is));
  const std::int64_t nfields = get_i64(is);
  if (nfields < 0 || nfields > 1'000'000) {
    throw std::runtime_error("model_io: corrupt field count");
  }
  for (std::int64_t i = 0; i < nfields; ++i) {
    Field f = get_field(is);
    fields_.emplace(f.name, std::move(f));
  }
}

const Field& HistoryReader::get(const std::string& name) const {
  auto it = fields_.find(name);
  if (it == fields_.end()) {
    throw std::runtime_error("model_io: no field '" + name + "'");
  }
  return it->second;
}

std::vector<std::string> HistoryReader::names() const {
  std::vector<std::string> out;
  out.reserve(fields_.size());
  for (const auto& [name, f] : fields_) out.push_back(name);
  return out;
}

bool write_restart(const std::string& path, const homme::Dims& d,
                   const homme::State& s) {
  HistoryWriter w(0, d.nlev, d.qsize);
  const std::int64_t nelem = static_cast<std::int64_t>(s.size());
  const std::int64_t fs = static_cast<std::int64_t>(d.field_size());
  auto pack = [&](const char* name, auto member,
                  std::int64_t per_elem) {
    Field f{name, {nelem, per_elem}, {}};
    f.data.reserve(static_cast<std::size_t>(nelem * per_elem));
    for (const auto& es : s) {
      const auto& v = es.*member;
      f.data.insert(f.data.end(), v.begin(), v.end());
    }
    w.add(std::move(f));
  };
  pack("u1", &homme::ElementState::u1, fs);
  pack("u2", &homme::ElementState::u2, fs);
  pack("T", &homme::ElementState::T, fs);
  pack("dp", &homme::ElementState::dp, fs);
  pack("qdp", &homme::ElementState::qdp, fs * d.qsize);
  pack("phis", &homme::ElementState::phis, mesh::kNpp);
  return w.write(path);
}

homme::State read_restart(const std::string& path, const homme::Dims& d) {
  HistoryReader r(path);
  if (r.nlev() != d.nlev || r.qsize() != d.qsize) return {};
  const auto& u1 = r.get("u1");
  const std::int64_t nelem = u1.shape.at(0);
  homme::State s(static_cast<std::size_t>(nelem), homme::ElementState(d));
  auto unpack = [&](const char* name, auto member) {
    const auto& f = r.get(name);
    std::size_t pos = 0;
    for (auto& es : s) {
      const std::size_t n = (es.*member).size();
      (es.*member).assign(f.data.data() + pos, n);
      pos += n;
    }
  };
  unpack("u1", &homme::ElementState::u1);
  unpack("u2", &homme::ElementState::u2);
  unpack("T", &homme::ElementState::T);
  unpack("dp", &homme::ElementState::dp);
  unpack("qdp", &homme::ElementState::qdp);
  unpack("phis", &homme::ElementState::phis);
  return s;
}

}  // namespace io
