#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "homme/state.hpp"

/// \file model_io.hpp
/// Model I/O: a self-describing binary history format plus exact-restart
/// serialization. The paper reports its results "on basis of whole
/// application with I/O"; this is the corresponding subsystem — a small
/// netCDF-like container (named, dimensioned, versioned records) without
/// the external dependency.
///
/// Format (little-endian, doubles):
///   header:  magic "SWCAMIO1", int64 ne, nlev, qsize, nelem
///   records: [name-length, name bytes, int64 count, count doubles] ...
///   trailer: record directory is implicit (stream is scanned on open).

namespace io {

/// A named block of doubles with its logical shape.
struct Field {
  std::string name;
  std::vector<std::int64_t> shape;
  std::vector<double> data;
};

/// Write-side: accumulate fields, then write one file per snapshot.
class HistoryWriter {
 public:
  HistoryWriter(int ne, int nlev, int qsize);

  void add(Field f) { fields_.push_back(std::move(f)); }
  /// Convenience: surface pressure and lowest-level temperature of a
  /// state (the Figure 4 / Figure 9 diagnostics).
  void add_surface_diagnostics(const homme::Dims& d, const homme::State& s);

  /// Write everything added so far; returns false on I/O failure.
  bool write(const std::string& path) const;

 private:
  int ne_, nlev_, qsize_;
  std::vector<Field> fields_;
};

/// Read-side: open a history file and fetch fields by name.
class HistoryReader {
 public:
  /// Throws std::runtime_error on malformed files.
  explicit HistoryReader(const std::string& path);

  int ne() const { return ne_; }
  int nlev() const { return nlev_; }
  int qsize() const { return qsize_; }
  bool has(const std::string& name) const { return fields_.count(name) > 0; }
  const Field& get(const std::string& name) const;
  std::vector<std::string> names() const;

 private:
  int ne_ = 0, nlev_ = 0, qsize_ = 0;
  std::map<std::string, Field> fields_;
};

/// Exact restart: serialize the full prognostic state. A run continued
/// from a restart file is bitwise identical to an uninterrupted run
/// (tested in test_io).
bool write_restart(const std::string& path, const homme::Dims& d,
                   const homme::State& s);
/// Returns an empty State on failure; the dims must match the file.
homme::State read_restart(const std::string& path, const homme::Dims& d);

}  // namespace io
