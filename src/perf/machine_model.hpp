#pragma once

#include <string>
#include <vector>

#include "net/network_model.hpp"

/// \file machine_model.hpp
/// Machine-scale performance model for CAM(-SE) on Sunway TaihuLight.
///
/// The scaling results of the paper (Figures 6-8, Table 3) were measured
/// on up to 10,075,000 cores. We reproduce their *shape* by composing
///   (a) per-element per-step kernel costs and flop counts *measured* on
///       the functional SW26010 simulator (calibrate()), with
///   (b) the analytic two-level TaihuLight network model,
/// exactly the decomposition the paper itself uses when it attributes
/// 23% of large-scale runtime to communication (section 7.6).
///
/// One dynamics step = 3 RK stages of compute_and_apply_rhs + a 3-stage
/// euler tracer subcycle + hyperviscosity + 1/3 of a vertical remap,
/// each stage followed by a halo exchange (DSS).

namespace perf {

/// Which port of CAM runs on the core group.
enum class Version {
  kOriginal,  ///< MPE only ("ori" in Figure 6)
  kOpenAcc,   ///< OpenACC refactoring
  kAthread    ///< fine-grained redesign
};

std::string to_string(Version v);

/// Per-element per-dynamics-step costs of one core group, measured on the
/// simulator at calibration time.
struct ElementCost {
  double seconds = 0.0;        ///< compute seconds per element per step
  double flops = 0.0;          ///< retired DP flops per element per step
};

/// One point of the multi-core-group contention curve, measured on the
/// simulator at calibration time: kernel slowdown and achieved per-CG DMA
/// bandwidth with \p active_cgs groups streaming through one shared
/// memory controller.
struct ContentionPoint {
  int active_cgs = 1;
  double slowdown = 1.0;        ///< kernel-time inflation vs. a lone group
  double per_cg_gbytes_s = 0.0; ///< achieved DMA bandwidth of one group
};

struct MachineModel {
  ElementCost cost[3];           ///< indexed by Version
  double physics_fraction = 0.9; ///< physics+rest cost relative to dynamics
  double pflops_scale = 1.0;     ///< anchor normalization (see calibrate())
  int nlev = 128;
  int qsize = 25;
  net::NetworkModel network;

  /// Measured multi-CG contention curve (1..active_cgs streams), and the
  /// conditions the per-element costs were measured under. With
  /// active_cgs > 1 every cost in cost[] already includes the measured
  /// intra-node contention of a fully loaded processor, so the fig7/fig8
  /// analytic scaling consumes measured — not assumed — contention.
  std::vector<ContentionPoint> contention;
  int active_cgs = 1;
  double contention_slowdown = 1.0;  ///< curve value at active_cgs

  /// Run the Table-1 kernels on the simulator and derive the per-element
  /// step costs. \p nelem is the per-process element count used for the
  /// calibration workset. \p active_cgs is the number of sibling core
  /// groups concurrently streaming DMA while the costs are measured
  /// (4 = every group of a fully loaded SW26010); the realized
  /// contention curve is measured on a CgPool, not taken from the
  /// sw/config.hpp constants.
  static MachineModel calibrate(int nlev = 128, int qsize = 25,
                                int nelem = 64, int active_cgs = 4);

  /// Dynamics time step (s) for a given horizontal resolution, following
  /// CAM-SE practice (ne30 -> 300 s, scaling like 1/ne).
  static double dyn_dt_seconds(int ne) { return 300.0 * 30.0 / ne; }

  struct StepCost {
    double compute_s = 0.0;
    double comm_s = 0.0;
    double total_s = 0.0;
    double pflops = 0.0;   ///< sustained PFlops at this configuration
  };

  /// Cost of one dynamics step of the HOMME dycore at resolution \p ne on
  /// \p nprocs core groups. \p overlap enables the redesigned
  /// bndry_exchangev (communication hidden behind interior compute).
  StepCost dycore_step(int ne, long long nprocs, Version v,
                       bool overlap = true) const;

  /// Whole-CAM simulation speed in simulated years per day, including the
  /// physics fraction.
  double sypd(int ne, long long nprocs, Version v, bool overlap = true) const;

  /// Strong-scaling parallel efficiency relative to \p base_procs.
  double parallel_efficiency(int ne, long long base_procs,
                             long long nprocs, Version v) const;

  /// Halo bytes exchanged per element-step stage for a process owning
  /// \p local elements (boundary GLL nodes x levels x 8 bytes).
  double halo_bytes(long long local) const;
  /// Number of halo-exchange stages per dynamics step.
  double exchanges_per_step() const;
};

}  // namespace perf
