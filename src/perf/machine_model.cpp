#include "perf/machine_model.hpp"

#include <algorithm>
#include <cmath>

#include "accel/euler_acc.hpp"
#include "accel/hypervis_acc.hpp"
#include "accel/remap_acc.hpp"
#include "accel/rhs_acc.hpp"
#include "accel/table1.hpp"
#include "sw/cg_pool.hpp"
#include "sw/cost_model.hpp"

namespace perf {

std::string to_string(Version v) {
  switch (v) {
    case Version::kOriginal: return "ori";
    case Version::kOpenAcc: return "openacc";
    case Version::kAthread: return "athread";
  }
  return "?";
}

namespace {

/// Fraction of whole-CAM runtime that no port accelerates (MPE-side
/// sequential work, pack/unpack, scheme glue, I/O). Derived from the
/// paper's own Figure 6 ratios: OpenACC gains 1.4-1.5x and Athread
/// another 1.1-1.4x over the full model although the kernels themselves
/// gain 22x / 50x — classic Amdahl with ~55% unaccelerated.
constexpr double kSerialFraction = 0.55;

int version_index(Version v) { return static_cast<int>(v); }

}  // namespace

MachineModel MachineModel::calibrate(int nlev, int qsize, int nelem,
                                     int active_cgs) {
  MachineModel m;
  m.nlev = nlev;
  m.qsize = qsize;
  m.active_cgs = std::max(1, active_cgs);

  homme::Dims d;
  d.nlev = nlev;
  d.qsize = qsize;
  auto mesh = mesh::CubedSphere::build(2, mesh::kEarthRadius);
  const auto base = accel::PackedElems::synthetic(mesh, d, nelem);
  const accel::EulerAccConfig ecfg{};
  const auto derived = accel::EulerDerived::make(base, ecfg.shared_extra);
  const accel::RhsAccConfig rcfg{};
  const accel::HypervisAccConfig hcfg{};

  // All measurements run on group 0 of a real pool so DMA costs sample
  // the shared memory controller. First the contention curve: the most
  // bandwidth-bound kernel (vertical remap) under 1..active_cgs
  // concurrently declared streams.
  sw::CgPool pool(m.active_cgs);
  sw::CoreGroup& cg = pool.group(0);
  std::vector<double> probe_s;
  std::vector<double> probe_bw;
  for (int n = 1; n <= m.active_cgs; ++n) {
    std::vector<sw::MemoryContention::StreamGuard> streams;
    streams.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) streams.emplace_back(pool.contention());
    auto probe = base;
    const sw::KernelStats st = accel::remap_athread(cg, probe);
    probe_s.push_back(st.seconds);
    probe_bw.push_back(
        static_cast<double>(st.totals.total_dma_bytes()) / st.seconds / 1e9);
  }
  for (int n = 1; n <= m.active_cgs; ++n) {
    const std::size_t i = static_cast<std::size_t>(n - 1);
    m.contention.push_back({n, probe_s[i] / probe_s[0], probe_bw[i]});
  }
  m.contention_slowdown = m.contention.back().slowdown;

  // Per-element costs, measured with the processor fully loaded: the
  // sibling groups' streams stay declared while every piece runs, so
  // acc/ath seconds are the contended ones.
  std::vector<sw::MemoryContention::StreamGuard> load;
  load.reserve(static_cast<std::size_t>(m.active_cgs));
  for (int i = 0; i < m.active_cgs; ++i) load.emplace_back(pool.contention());

  // One dynamics step = 3 RK stages + 3 tracer stages + hyperviscosity +
  // biharmonic + 1/3 vertical remap (remap every 3rd step).
  struct Piece {
    double weight;
    sw::KernelStats acc, ath;
    sw::WorkEstimate work;
  };
  std::vector<Piece> pieces;
  {
    Piece pc{3.0, {}, {}, accel::rhs_work(base)};
    auto p1 = base;
    pc.acc = accel::rhs_openacc(cg, p1, rcfg);
    auto p2 = base;
    pc.ath = accel::rhs_athread(cg, p2, rcfg);
    pieces.push_back(pc);
  }
  {
    Piece pc{3.0, {}, {}, accel::euler_step_work(base)};
    auto p1 = base;
    pc.acc = accel::euler_openacc(cg, p1, derived, ecfg);
    auto p2 = base;
    pc.ath = accel::euler_athread(cg, p2, derived, ecfg);
    pieces.push_back(pc);
  }
  {
    Piece pc{1.0, {}, {}, accel::laplace_work(base, 2)};
    pc.work.bytes *= 3;
    auto p1 = base;
    pc.acc = accel::hypervis_openacc(cg, p1, accel::HvKernel::kDp2, hcfg);
    auto p2 = base;
    pc.ath = accel::hypervis_athread(cg, p2, accel::HvKernel::kDp2, hcfg);
    pieces.push_back(pc);
  }
  {
    Piece pc{1.0, {}, {}, accel::laplace_work(base, 2)};
    auto p1 = base;
    pc.acc =
        accel::hypervis_openacc(cg, p1, accel::HvKernel::kBiharmDp3d, hcfg);
    auto p2 = base;
    pc.ath =
        accel::hypervis_athread(cg, p2, accel::HvKernel::kBiharmDp3d, hcfg);
    pieces.push_back(pc);
  }
  {
    Piece pc{1.0 / 3.0, {}, {}, accel::remap_work(base)};
    auto p1 = base;
    pc.acc = accel::remap_openacc(cg, p1);
    auto p2 = base;
    pc.ath = accel::remap_athread(cg, p2);
    pieces.push_back(pc);
  }

  double acc_s = 0.0, ath_s = 0.0, mpe_s = 0.0, flops = 0.0;
  for (auto& pc : pieces) {
    acc_s += pc.weight * pc.acc.seconds;
    ath_s += pc.weight * pc.ath.seconds;
    sw::WorkEstimate w = pc.work;
    w.flops = pc.ath.totals.total_flops();
    mpe_s += pc.weight * sw::roofline_seconds(w, sw::platforms::sw_mpe);
    flops += pc.weight * static_cast<double>(pc.ath.totals.total_flops());
  }
  // The MPE reaches memory through the same shared controller, so the
  // analytic roofline of the original port degrades by the measured
  // curve too (all four groups' MPEs run the model concurrently).
  mpe_s *= m.contention_slowdown;
  const double inv = 1.0 / nelem;
  m.cost[version_index(Version::kOriginal)] = {mpe_s * inv, flops * inv};
  m.cost[version_index(Version::kOpenAcc)] = {acc_s * inv, flops * inv};
  m.cost[version_index(Version::kAthread)] = {ath_s * inv, flops * inv};

  // Normalize sustained PFlops once at a documented anchor (the paper's
  // ne1024 / 8192-process measurement of 0.18 PFlops) so absolute rates
  // are comparable; every curve *shape* comes from the model itself.
  {
    const long long anchor_procs = 8192;
    const long long anchor_nelem = 6LL * 1024 * 1024;
    const double local_a =
        static_cast<double>(anchor_nelem) / anchor_procs;
    const ElementCost& ca = m.cost[version_index(Version::kAthread)];
    const double t = local_a * ca.seconds;  // compute dominated
    const double raw_pflops =
        static_cast<double>(anchor_nelem) * ca.flops / t / 1e15;
    m.pflops_scale = 0.18 / raw_pflops;
  }
  return m;
}

double MachineModel::halo_bytes(long long local) const {
  // Boundary GLL nodes of a compact patch of `local` elements: perimeter
  // ~ 4 sqrt(local) element edges x 3 nodes, x levels x 8 bytes.
  const double nodes = 4.0 * std::sqrt(static_cast<double>(local)) * 3.0 + 4.0;
  return nodes * nlev * 8.0;
}

double MachineModel::exchanges_per_step() const {
  // 3 RK stages + 3 tracer stages + 2 hyperviscosity DSS.
  return 8.0;
}

MachineModel::StepCost MachineModel::dycore_step(int ne, long long nprocs,
                                                 Version v,
                                                 bool overlap) const {
  StepCost out;
  const long long nelem = 6LL * ne * ne;
  const double local =
      static_cast<double>(nelem) / static_cast<double>(nprocs);
  const ElementCost& c = cost[version_index(v)];
  out.compute_s = local * c.seconds;

  // Fields carried per exchange: RK stages move u (3 Cartesian) + T + dp,
  // tracer stages move qsize tracers, hyperviscosity moves 4; average.
  const double fields = (3.0 * 5.0 + 3.0 * qsize + 2.0 * 4.0) /
                        exchanges_per_step();
  const double bytes_per_neighbor =
      fields * halo_bytes(static_cast<long long>(std::ceil(local))) / 8.0;
  const double remote_frac = nprocs > 1024 ? 0.3 : 0.1;
  double comm = exchanges_per_step() *
                network.halo_exchange_seconds(8, static_cast<std::size_t>(
                                                     bytes_per_neighbor),
                                              remote_frac);
  if (overlap) {
    // Section 7.6: interior elements compute while messages fly. The
    // hideable part is bounded by the interior compute time; message
    // launch latency can never be hidden.
    const double interior_frac =
        std::max(0.0, 1.0 - 4.0 / std::sqrt(std::max(local, 1.0)));
    const double alpha_floor = exchanges_per_step() *
                               (remote_frac * network.params().alpha_inter_super_s +
                                (1.0 - remote_frac) *
                                    network.params().alpha_intra_super_s);
    comm = std::max(comm - out.compute_s * interior_frac, alpha_floor);
  }
  out.comm_s = comm;
  out.total_s = out.compute_s + out.comm_s;

  out.pflops = static_cast<double>(nelem) * c.flops / out.total_s / 1e15 *
               pflops_scale;
  return out;
}

namespace {

/// Amdahl factor of a port: the unaccelerated fraction plus the kernel
/// fraction divided by the measured aggregate kernel speedup over MPE.
double amdahl(const MachineModel& m, Version v) {
  const double speedup =
      m.cost[0].seconds / m.cost[static_cast<int>(v)].seconds;
  return kSerialFraction + (1.0 - kSerialFraction) / speedup;
}

/// Whole-CAM per-step cost model t = F + local * c * amdahl(v), with the
/// two parameters (F, c) solved from the paper's own Figure 6 anchors:
///   ne30  / 5,400 procs / Athread -> 21.5 SYPD (t_step = 38.3 ms)
///   ne120 / 28,800 procs / OpenACC -> 3.4 SYPD (t_step = 60.4 ms)
/// Every other Figure 6 point is then a prediction of the model.
struct WholeCam {
  double fixed_s;
  double c_base;
};

WholeCam whole_cam_calibration(const MachineModel& m) {
  auto t_step_target = [](int ne, double target_sypd) {
    const double dt = MachineModel::dyn_dt_seconds(ne);
    const double steps_per_year = 365.0 * 86400.0 / dt;
    return 86400.0 / target_sypd / steps_per_year;
  };
  const double t30 = t_step_target(30, 21.5);     // local = 1 element
  const double t120 = t_step_target(120, 3.4);    // local = 3 elements
  const double a_ath = amdahl(m, Version::kAthread);
  const double a_acc = amdahl(m, Version::kOpenAcc);
  // t30 = F + 1 * c * a_ath ; t120 = F + 3 * c * a_acc.
  const double c = (t120 - t30) / (3.0 * a_acc - a_ath);
  const double f = t30 - c * a_ath;
  return {f, c};
}

}  // namespace

double MachineModel::sypd(int ne, long long nprocs, Version v,
                          bool overlap) const {
  const WholeCam wc = whole_cam_calibration(*this);
  const long long nelem = 6LL * ne * ne;
  const double local =
      static_cast<double>(nelem) / static_cast<double>(nprocs);
  const auto dyn = dycore_step(ne, nprocs, v, overlap);
  const double t_step =
      wc.fixed_s + local * wc.c_base * amdahl(*this, v) + dyn.comm_s;
  const double dt = dyn_dt_seconds(ne);
  const double wall_per_year = 365.0 * 86400.0 / dt * t_step;
  return 86400.0 / wall_per_year;
}

double MachineModel::parallel_efficiency(int ne, long long base_procs,
                                         long long nprocs, Version v) const {
  const double t0 = dycore_step(ne, base_procs, v).total_s;
  const double t1 = dycore_step(ne, nprocs, v).total_s;
  return (t0 * static_cast<double>(base_procs)) /
         (t1 * static_cast<double>(nprocs));
}

}  // namespace perf
