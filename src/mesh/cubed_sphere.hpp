#pragma once

#include <span>
#include <utility>
#include <vector>

#include "mesh/geometry.hpp"

/// \file cubed_sphere.hpp
/// Global cubed-sphere topology: ne x ne x 6 spectral elements with a
/// unique global id for every shared GLL point.
///
/// Connectivity is derived by geometric identification (points from
/// different faces that coincide on the sphere get the same node id), so
/// all twelve cube-edge orientations fall out automatically and direct
/// stiffness summation (DSS) can be expressed as gather/sum/scatter over
/// nodes. Element counts for the paper's configurations are in Table 2:
/// ne64 -> 24,576 elements ... ne4096 -> 100,663,296.

namespace mesh {

class CubedSphere {
 public:
  /// Build the mesh. Cost is O(ne^2); intended for ne up to a few dozen
  /// (the scaling benches use analytic counts, not built meshes).
  static CubedSphere build(int ne, double radius = kEarthRadius);

  int ne() const { return ne_; }
  int nelem() const { return static_cast<int>(geom_.size()); }
  int nnodes() const { return nnodes_; }
  double radius() const { return radius_; }

  const ElementGeom& geom(int elem) const {
    return geom_[static_cast<std::size_t>(elem)];
  }
  /// Global node ids of element \p elem, in gidx order.
  const std::array<int, kNpp>& nodes(int elem) const {
    return nodes_[static_cast<std::size_t>(elem)];
  }
  /// All (element, gll-index) pairs sharing global node \p node.
  const std::vector<std::pair<int, int>>& node_elems(int node) const {
    return node_elems_[static_cast<std::size_t>(node)];
  }

  int elem_id(int face, int ei, int ej) const {
    return (face * ne_ + ej) * ne_ + ei;
  }
  /// (face, ei, ej) of an element id.
  std::array<int, 3> elem_coords(int elem) const {
    return {elem / (ne_ * ne_), elem % ne_, (elem / ne_) % ne_};
  }

  /// Elements sharing at least one edge (>= 2 nodes) with \p elem.
  std::vector<int> edge_neighbors(int elem) const;
  /// Elements sharing at least one node with \p elem (edge + corner).
  std::vector<int> all_neighbors(int elem) const;

  /// Reference (sequential, global) DSS of one scalar per GLL point:
  /// field[elem * kNpp + gidx] <- weighted average over sharing elements.
  /// This is the specification the distributed bndry_exchangev versions
  /// are tested against.
  void dss_scalar(std::span<double> field) const;

  /// Sum of the GLL mass over all elements; equals the sphere area.
  double total_area() const;

 private:
  int ne_ = 0;
  int nnodes_ = 0;
  double radius_ = 0.0;
  std::vector<ElementGeom> geom_;
  std::vector<std::array<int, kNpp>> nodes_;
  std::vector<std::vector<std::pair<int, int>>> node_elems_;
};

/// Elements for a given ne without building the mesh (Table 2 rows).
inline long long elements_for_ne(long long ne) { return 6 * ne * ne; }

}  // namespace mesh
