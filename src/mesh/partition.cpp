#include "mesh/partition.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace mesh {

long long hilbert_d(int order, int x, int y) {
  long long rx, ry, d = 0;
  for (long long s = 1LL << (order - 1); s > 0; s /= 2) {
    rx = (x & s) > 0 ? 1 : 0;
    ry = (y & s) > 0 ? 1 : 0;
    d += s * s * ((3 * rx) ^ ry);
    // Rotate quadrant.
    if (ry == 0) {
      if (rx == 1) {
        x = static_cast<int>(s - 1 - x);
        y = static_cast<int>(s - 1 - y);
      }
      std::swap(x, y);
    }
  }
  return d;
}

Partition Partition::build(const CubedSphere& mesh, int nranks) {
  const int ne = mesh.ne();
  int order = 0;
  while ((1 << order) < ne) ++order;
  if (order == 0) order = 1;

  // Elements in SFC order: faces concatenated, Hilbert order within each.
  std::vector<std::pair<long long, int>> keyed;
  keyed.reserve(static_cast<std::size_t>(mesh.nelem()));
  for (int e = 0; e < mesh.nelem(); ++e) {
    const auto [face, ei, ej] = mesh.elem_coords(e);
    const long long face_span = (1LL << order) * (1LL << order);
    keyed.emplace_back(face * face_span + hilbert_d(order, ei, ej), e);
  }
  std::sort(keyed.begin(), keyed.end());

  Partition p;
  p.nranks = nranks;
  p.elem_rank.resize(static_cast<std::size_t>(mesh.nelem()));
  p.rank_elems.resize(static_cast<std::size_t>(nranks));
  const int n = mesh.nelem();
  const int base = n / nranks;
  const int extra = n % nranks;
  std::size_t pos = 0;
  for (int r = 0; r < nranks; ++r) {
    const int count = base + (r < extra ? 1 : 0);
    for (int c = 0; c < count; ++c, ++pos) {
      const int e = keyed[pos].second;
      p.elem_rank[static_cast<std::size_t>(e)] = r;
      p.rank_elems[static_cast<std::size_t>(r)].push_back(e);
    }
  }
  return p;
}

CommPlan CommPlan::build(const CubedSphere& mesh, const Partition& part) {
  CommPlan plan;
  plan.per_rank.resize(static_cast<std::size_t>(part.nranks));

  // node -> set of ranks touching it.
  std::map<std::pair<int, int>, std::set<int>> pair_nodes;  // (r1<r2) -> nodes
  for (int node = 0; node < mesh.nnodes(); ++node) {
    std::set<int> ranks;
    for (const auto& [e, idx] : mesh.node_elems(node)) {
      ranks.insert(part.owner(e));
    }
    if (ranks.size() < 2) continue;
    for (auto it1 = ranks.begin(); it1 != ranks.end(); ++it1) {
      for (auto it2 = std::next(it1); it2 != ranks.end(); ++it2) {
        pair_nodes[{*it1, *it2}].insert(node);
      }
    }
  }

  std::vector<std::map<int, std::vector<int>>> nb(
      static_cast<std::size_t>(part.nranks));
  for (const auto& [pr, nodes] : pair_nodes) {
    std::vector<int> sorted(nodes.begin(), nodes.end());
    nb[static_cast<std::size_t>(pr.first)][pr.second] = sorted;
    nb[static_cast<std::size_t>(pr.second)][pr.first] = sorted;
  }
  for (int r = 0; r < part.nranks; ++r) {
    for (auto& [other, nodes] : nb[static_cast<std::size_t>(r)]) {
      plan.per_rank[static_cast<std::size_t>(r)].push_back(
          Neighbor{other, std::move(nodes)});
    }
  }
  return plan;
}

}  // namespace mesh
