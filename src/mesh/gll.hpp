#pragma once

#include <array>

/// \file gll.hpp
/// Gauss-Lobatto-Legendre basis for the spectral element method.
///
/// CAM-SE discretizes each cubed-sphere element with an np x np tensor
/// grid of GLL points; the paper's configuration (Figure 2: "a 4 by 4
/// grid at each level") uses np = 4, i.e. 3rd-degree polynomials. The
/// quadrature is exact through degree 2*np-3 = 5 and the collocation
/// derivative matrix below realizes all horizontal operators.

namespace mesh {

/// GLL points per element edge (CAM-SE / paper configuration).
inline constexpr int kNp = 4;

/// The 1D GLL basis: nodes, quadrature weights, and the collocation
/// derivative matrix deriv[i][j] = dL_j/dx evaluated at node i.
struct GllBasis {
  std::array<double, kNp> nodes;
  std::array<double, kNp> weights;
  std::array<std::array<double, kNp>, kNp> deriv;

  /// Evaluate the j-th Lagrange cardinal function at x.
  double cardinal(int j, double x) const;
};

/// The basis is fully determined by kNp; built once, cached.
const GllBasis& gll();

}  // namespace mesh
