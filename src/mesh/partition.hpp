#pragma once

#include <vector>

#include "mesh/cubed_sphere.hpp"

/// \file partition.hpp
/// Space-filling-curve domain decomposition, as CAM-SE uses to assign
/// cubed-sphere elements to MPI processes, plus the node-sharing
/// communication plan consumed by bndry_exchangev.

namespace mesh {

/// Assignment of elements to ranks along a per-face Hilbert curve:
/// contiguous curve chunks give compact, low-surface partitions, which is
/// what makes most halo traffic stay inside a supernode on TaihuLight.
struct Partition {
  int nranks = 0;
  std::vector<int> elem_rank;                ///< element -> owning rank
  std::vector<std::vector<int>> rank_elems;  ///< rank -> elements, SFC order

  static Partition build(const CubedSphere& mesh, int nranks);

  int owner(int elem) const {
    return elem_rank[static_cast<std::size_t>(elem)];
  }
};

/// The communication plan of one rank pair: the globally-sorted list of
/// nodes shared between the two ranks' elements. Both sides build the
/// same list, so exchanged buffers line up without further handshaking.
struct CommPlan {
  struct Neighbor {
    int rank;
    std::vector<int> nodes;  ///< shared global node ids, ascending
  };
  /// per_rank[r] = neighbors of rank r, ascending by rank id.
  std::vector<std::vector<Neighbor>> per_rank;

  static CommPlan build(const CubedSphere& mesh, const Partition& part);
};

/// Hilbert curve index of cell (x, y) on a 2^order x 2^order grid.
/// Exposed for testing.
long long hilbert_d(int order, int x, int y);

}  // namespace mesh
