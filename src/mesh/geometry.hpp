#pragma once

#include <array>

#include "mesh/gll.hpp"

/// \file geometry.hpp
/// Equiangular gnomonic cubed-sphere geometry.
///
/// The computational domain of CAM-SE consists of six cube faces, each
/// subdivided into ne x ne spectral elements (Table 2 of the paper). This
/// file maps elements to the sphere and provides the per-GLL-point metric
/// terms every horizontal operator needs: the covariant/contravariant
/// basis vectors, metric tensor, Jacobian (area element) and GLL mass.
///
/// Velocity is stored in contravariant components per element; because
/// neighbouring faces use different coordinate frames, direct stiffness
/// summation converts vectors to Cartesian 3-space via the covariant
/// basis, assembles, and projects back with the contravariant (dual)
/// basis — a coordinate-free equivalent of HOMME's sphere/contravariant
/// transforms.

namespace mesh {

/// Mean Earth radius, m.
inline constexpr double kEarthRadius = 6.371e6;
/// Earth rotation rate, 1/s.
inline constexpr double kOmega = 7.292e-5;

using Vec3 = std::array<double, 3>;

inline double dot(const Vec3& a, const Vec3& b) {
  return a[0] * b[0] + a[1] * b[1] + a[2] * b[2];
}

/// Flattened GLL index: i runs along the first reference axis (alpha),
/// j along the second (beta).
inline constexpr int gidx(int i, int j) { return j * kNp + i; }
/// GLL points per element.
inline constexpr int kNpp = kNp * kNp;

/// Metric terms of one element, one entry per GLL point (gidx order).
struct ElementGeom {
  std::array<Vec3, kNpp> pos;   ///< position on the sphere (radius R)
  std::array<Vec3, kNpp> a1;    ///< covariant basis dP/dx
  std::array<Vec3, kNpp> a2;    ///< covariant basis dP/dy
  std::array<Vec3, kNpp> b1;    ///< contravariant (dual) basis
  std::array<Vec3, kNpp> b2;
  std::array<double, kNpp> jac;     ///< sqrt(det g), area element
  std::array<double, kNpp> ginv11;  ///< inverse metric tensor
  std::array<double, kNpp> ginv12;
  std::array<double, kNpp> ginv22;
  std::array<double, kNpp> g11;     ///< metric tensor
  std::array<double, kNpp> g12;
  std::array<double, kNpp> g22;
  std::array<double, kNpp> lat;
  std::array<double, kNpp> lon;
  std::array<double, kNpp> coriolis;  ///< 2*Omega*sin(lat)
  std::array<double, kNpp> mass;      ///< w_i * w_j * jac
  std::array<double, kNpp> rmass;     ///< 1 / globally assembled mass
};

/// Position on the sphere of radius \p radius for face \p face and
/// equiangular face coordinates alpha, beta in [-pi/4, pi/4].
Vec3 face_point(int face, double alpha, double beta, double radius);

/// Build the metric terms of element (face, ei, ej) on an ne x ne x 6
/// cubed sphere of radius \p radius. rmass is initialized to 1/mass and
/// must be fixed up by global assembly (CubedSphere::build does this).
ElementGeom element_geometry(int face, int ei, int ej, int ne,
                             double radius);

}  // namespace mesh
