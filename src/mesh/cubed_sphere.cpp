#include "mesh/cubed_sphere.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <set>
#include <unordered_map>

namespace mesh {

namespace {

/// Quantized-coordinate key for identifying coincident GLL points. Lookup
/// scans the 27 neighbouring cells so points that straddle a quantization
/// boundary still unify.
struct NodeIndexer {
  double eps;
  std::unordered_map<std::uint64_t, std::vector<std::pair<Vec3, int>>> cells;
  int next_id = 0;

  static std::uint64_t cell_key(std::int64_t x, std::int64_t y,
                                std::int64_t z) {
    std::uint64_t h = 1469598103934665603ull;
    for (std::int64_t v : {x, y, z}) {
      h ^= static_cast<std::uint64_t>(v);
      h *= 1099511628211ull;
    }
    return h;
  }

  int id_of(const Vec3& p) {
    const std::int64_t cx = static_cast<std::int64_t>(std::floor(p[0] / eps));
    const std::int64_t cy = static_cast<std::int64_t>(std::floor(p[1] / eps));
    const std::int64_t cz = static_cast<std::int64_t>(std::floor(p[2] / eps));
    for (std::int64_t dx = -1; dx <= 1; ++dx) {
      for (std::int64_t dy = -1; dy <= 1; ++dy) {
        for (std::int64_t dz = -1; dz <= 1; ++dz) {
          auto it = cells.find(cell_key(cx + dx, cy + dy, cz + dz));
          if (it == cells.end()) continue;
          for (const auto& [q, id] : it->second) {
            const double d2 = (p[0] - q[0]) * (p[0] - q[0]) +
                              (p[1] - q[1]) * (p[1] - q[1]) +
                              (p[2] - q[2]) * (p[2] - q[2]);
            if (d2 < eps * eps) return id;
          }
        }
      }
    }
    const int id = next_id++;
    cells[cell_key(cx, cy, cz)].emplace_back(p, id);
    return id;
  }
};

}  // namespace

CubedSphere CubedSphere::build(int ne, double radius) {
  CubedSphere m;
  m.ne_ = ne;
  m.radius_ = radius;
  const int nelem = 6 * ne * ne;
  m.geom_.reserve(static_cast<std::size_t>(nelem));
  m.nodes_.resize(static_cast<std::size_t>(nelem));

  // Shared points are ~ radius * (pi/2) / (3*ne) apart at minimum; use a
  // far smaller identification tolerance.
  NodeIndexer indexer{radius * 1e-8 / ne, {}, 0};

  for (int face = 0; face < 6; ++face) {
    for (int ej = 0; ej < ne; ++ej) {
      for (int ei = 0; ei < ne; ++ei) {
        const int e = m.elem_id(face, ei, ej);
        ElementGeom g = element_geometry(face, ei, ej, ne, radius);
        for (int k = 0; k < kNpp; ++k) {
          m.nodes_[static_cast<std::size_t>(e)][static_cast<std::size_t>(k)] =
              indexer.id_of(g.pos[static_cast<std::size_t>(k)]);
        }
        m.geom_.push_back(std::move(g));
      }
    }
  }
  m.nnodes_ = indexer.next_id;

  m.node_elems_.resize(static_cast<std::size_t>(m.nnodes_));
  for (int e = 0; e < nelem; ++e) {
    for (int k = 0; k < kNpp; ++k) {
      m.node_elems_[static_cast<std::size_t>(
                        m.nodes_[static_cast<std::size_t>(e)]
                                [static_cast<std::size_t>(k)])]
          .emplace_back(e, k);
    }
  }

  // Fix up rmass with the globally assembled node mass.
  std::vector<double> node_mass(static_cast<std::size_t>(m.nnodes_), 0.0);
  for (int e = 0; e < nelem; ++e) {
    const auto& ids = m.nodes_[static_cast<std::size_t>(e)];
    const auto& g = m.geom_[static_cast<std::size_t>(e)];
    for (int k = 0; k < kNpp; ++k) {
      node_mass[static_cast<std::size_t>(ids[static_cast<std::size_t>(k)])] +=
          g.mass[static_cast<std::size_t>(k)];
    }
  }
  for (int e = 0; e < nelem; ++e) {
    const auto& ids = m.nodes_[static_cast<std::size_t>(e)];
    auto& g = m.geom_[static_cast<std::size_t>(e)];
    for (int k = 0; k < kNpp; ++k) {
      g.rmass[static_cast<std::size_t>(k)] =
          1.0 /
          node_mass[static_cast<std::size_t>(ids[static_cast<std::size_t>(k)])];
    }
  }
  return m;
}

std::vector<int> CubedSphere::edge_neighbors(int elem) const {
  std::unordered_map<int, int> shared;
  for (int k = 0; k < kNpp; ++k) {
    const int node =
        nodes_[static_cast<std::size_t>(elem)][static_cast<std::size_t>(k)];
    for (const auto& [e, idx] : node_elems_[static_cast<std::size_t>(node)]) {
      if (e != elem) shared[e] += 1;
    }
  }
  std::vector<int> out;
  for (const auto& [e, count] : shared) {
    if (count >= 2) out.push_back(e);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<int> CubedSphere::all_neighbors(int elem) const {
  std::set<int> out;
  for (int k = 0; k < kNpp; ++k) {
    const int node =
        nodes_[static_cast<std::size_t>(elem)][static_cast<std::size_t>(k)];
    for (const auto& [e, idx] : node_elems_[static_cast<std::size_t>(node)]) {
      if (e != elem) out.insert(e);
    }
  }
  return {out.begin(), out.end()};
}

void CubedSphere::dss_scalar(std::span<double> field) const {
  std::vector<double> acc(static_cast<std::size_t>(nnodes_), 0.0);
  const int n = nelem();
  for (int e = 0; e < n; ++e) {
    const auto& ids = nodes_[static_cast<std::size_t>(e)];
    const auto& g = geom_[static_cast<std::size_t>(e)];
    for (int k = 0; k < kNpp; ++k) {
      acc[static_cast<std::size_t>(ids[static_cast<std::size_t>(k)])] +=
          g.mass[static_cast<std::size_t>(k)] *
          field[static_cast<std::size_t>(e * kNpp + k)];
    }
  }
  for (int e = 0; e < n; ++e) {
    const auto& ids = nodes_[static_cast<std::size_t>(e)];
    const auto& g = geom_[static_cast<std::size_t>(e)];
    for (int k = 0; k < kNpp; ++k) {
      field[static_cast<std::size_t>(e * kNpp + k)] =
          acc[static_cast<std::size_t>(ids[static_cast<std::size_t>(k)])] *
          g.rmass[static_cast<std::size_t>(k)];
    }
  }
}

double CubedSphere::total_area() const {
  double area = 0.0;
  for (const auto& g : geom_) {
    for (double m : g.mass) area += m;
  }
  return area;
}

}  // namespace mesh
