#include "mesh/geometry.hpp"

#include <cmath>

namespace mesh {

namespace {

struct FaceFrame {
  Vec3 c;   ///< face center axis
  Vec3 t1;  ///< alpha tangent
  Vec3 t2;  ///< beta tangent
};

/// Orientation of the six cube faces. Any consistent set works: the
/// topology builder identifies shared points by their coordinates, not by
/// hand-coded edge tables.
constexpr std::array<FaceFrame, 6> kFaces = {{
    {{1, 0, 0}, {0, 1, 0}, {0, 0, 1}},    // +x
    {{0, 1, 0}, {-1, 0, 0}, {0, 0, 1}},   // +y
    {{-1, 0, 0}, {0, -1, 0}, {0, 0, 1}},  // -x
    {{0, -1, 0}, {1, 0, 0}, {0, 0, 1}},   // -y
    {{0, 0, 1}, {0, 1, 0}, {-1, 0, 0}},   // +z
    {{0, 0, -1}, {0, 1, 0}, {1, 0, 0}},   // -z
}};

Vec3 axpy(double a, const Vec3& x, const Vec3& y) {
  return {a * x[0] + y[0], a * x[1] + y[1], a * x[2] + y[2]};
}

}  // namespace

Vec3 face_point(int face, double alpha, double beta, double radius) {
  const FaceFrame& f = kFaces[static_cast<std::size_t>(face)];
  const double u = std::tan(alpha), v = std::tan(beta);
  Vec3 w = axpy(u, f.t1, axpy(v, f.t2, f.c));
  const double n = std::sqrt(dot(w, w));
  return {radius * w[0] / n, radius * w[1] / n, radius * w[2] / n};
}

ElementGeom element_geometry(int face, int ei, int ej, int ne,
                             double radius) {
  const GllBasis& b = gll();
  const FaceFrame& f = kFaces[static_cast<std::size_t>(face)];
  const double dab = (M_PI / 2.0) / ne;          // face-angle width of element
  const double a0 = -M_PI / 4.0 + ei * dab;      // alpha at x = -1
  const double b0 = -M_PI / 4.0 + ej * dab;      // beta at y = -1
  const double dadx = dab / 2.0;                 // d(alpha)/d(ref x)

  ElementGeom g;
  for (int j = 0; j < kNp; ++j) {
    for (int i = 0; i < kNp; ++i) {
      const double alpha = a0 + (b.nodes[static_cast<std::size_t>(i)] + 1.0) * dadx;
      const double beta = b0 + (b.nodes[static_cast<std::size_t>(j)] + 1.0) * dadx;
      const double u = std::tan(alpha), v = std::tan(beta);
      const double seca2 = 1.0 + u * u;  // sec^2(alpha)
      const double secb2 = 1.0 + v * v;

      Vec3 w = axpy(u, f.t1, axpy(v, f.t2, f.c));
      const double n2 = dot(w, w);
      const double n = std::sqrt(n2);
      const int k = gidx(i, j);

      g.pos[k] = {radius * w[0] / n, radius * w[1] / n, radius * w[2] / n};

      // dP/dalpha = R * (w_a / n - w (w . w_a) / n^3), w_a = sec^2(a) t1.
      const double wa_dot_w = seca2 * dot(f.t1, w);
      const double wb_dot_w = secb2 * dot(f.t2, w);
      Vec3 dPda, dPdb;
      for (int d = 0; d < 3; ++d) {
        dPda[d] = radius * (seca2 * f.t1[d] / n - w[d] * wa_dot_w / (n2 * n));
        dPdb[d] = radius * (secb2 * f.t2[d] / n - w[d] * wb_dot_w / (n2 * n));
      }
      // Chain to reference coordinates x, y in [-1, 1].
      for (int d = 0; d < 3; ++d) {
        g.a1[k][d] = dPda[d] * dadx;
        g.a2[k][d] = dPdb[d] * dadx;
      }

      const double g11 = dot(g.a1[k], g.a1[k]);
      const double g12 = dot(g.a1[k], g.a2[k]);
      const double g22 = dot(g.a2[k], g.a2[k]);
      const double det = g11 * g22 - g12 * g12;
      g.g11[k] = g11;
      g.g12[k] = g12;
      g.g22[k] = g22;
      g.jac[k] = std::sqrt(det);
      g.ginv11[k] = g22 / det;
      g.ginv12[k] = -g12 / det;
      g.ginv22[k] = g11 / det;

      // Dual basis: b^i . a_j = delta_ij.
      for (int d = 0; d < 3; ++d) {
        g.b1[k][d] = (g22 * g.a1[k][d] - g12 * g.a2[k][d]) / det;
        g.b2[k][d] = (g11 * g.a2[k][d] - g12 * g.a1[k][d]) / det;
      }

      g.lat[k] = std::asin(g.pos[k][2] / radius);
      g.lon[k] = std::atan2(g.pos[k][1], g.pos[k][0]);
      g.coriolis[k] = 2.0 * kOmega * std::sin(g.lat[k]);
      g.mass[k] = b.weights[static_cast<std::size_t>(i)] *
                  b.weights[static_cast<std::size_t>(j)] * g.jac[k];
      g.rmass[k] = 1.0 / g.mass[k];
    }
  }
  return g;
}

}  // namespace mesh
