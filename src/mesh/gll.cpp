#include "mesh/gll.hpp"

#include <cmath>

namespace mesh {

namespace {

/// Barycentric weights for the node set.
std::array<double, kNp> bary_weights(const std::array<double, kNp>& x) {
  std::array<double, kNp> w{};
  for (int j = 0; j < kNp; ++j) {
    double p = 1.0;
    for (int k = 0; k < kNp; ++k) {
      if (k != j) p *= (x[j] - x[k]);
    }
    w[j] = 1.0 / p;
  }
  return w;
}

GllBasis build() {
  GllBasis b;
  // np = 4 GLL nodes: +-1 and +-1/sqrt(5); weights 1/6 and 5/6.
  const double s = 1.0 / std::sqrt(5.0);
  b.nodes = {-1.0, -s, s, 1.0};
  b.weights = {1.0 / 6.0, 5.0 / 6.0, 5.0 / 6.0, 1.0 / 6.0};

  // Collocation derivative matrix from the barycentric form:
  // D[i][j] = (w_j / w_i) / (x_i - x_j) for i != j,
  // D[i][i] = -sum_{j != i} D[i][j].
  const auto w = bary_weights(b.nodes);
  for (int i = 0; i < kNp; ++i) {
    double diag = 0.0;
    for (int j = 0; j < kNp; ++j) {
      if (i == j) continue;
      b.deriv[i][j] = (w[j] / w[i]) / (b.nodes[i] - b.nodes[j]);
      diag -= b.deriv[i][j];
    }
    b.deriv[i][i] = diag;
  }
  return b;
}

}  // namespace

double GllBasis::cardinal(int j, double x) const {
  double num = 1.0, den = 1.0;
  for (int k = 0; k < kNp; ++k) {
    if (k == j) continue;
    num *= (x - nodes[k]);
    den *= (nodes[j] - nodes[k]);
  }
  return num / den;
}

const GllBasis& gll() {
  static const GllBasis basis = build();
  return basis;
}

}  // namespace mesh
