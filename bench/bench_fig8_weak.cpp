// Reproduces Figure 8: weak scalability with 48 / 192 / 650 / 768
// elements per process. The headline point: 650 elements/process on
// 155,000 processes = 10,075,000 cores at ~3.3 PFlops, 98.5% efficiency.
//
// A measured section weak-scales a real model::Session over the threaded
// mini-MPI: (ne2, 1 rank), (ne3, 2 ranks), (ne4, 4 ranks) hold the
// elements-per-rank load near constant (24 / 27 / 24).

// Pass --json <path> for a machine-readable record of every plotted point.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "model/session.hpp"
#include "obs/report.hpp"
#include "perf/machine_model.hpp"

namespace {

struct MeasuredPoint {
  int ne = 0;
  int nranks = 0;
  int elems_per_rank = 0;
  double wall_s = 0.0;
  double step_s = 0.0;
  double weak_efficiency = 0.0;  ///< step_s(1 rank) / step_s(this point)
};

/// Step wall time at near-constant per-rank load across rank counts.
std::vector<MeasuredPoint> measure_weak(int steps) {
  std::vector<MeasuredPoint> out;
  for (auto [ne, nranks] :
       {std::pair{2, 1}, std::pair{3, 2}, std::pair{4, 4}}) {
    model::Session session(
        model::SessionConfig{}.with_ne(ne).with_levels(8, 2).with_ranks(
            nranks));
    session.step();  // warm
    const auto t0 = std::chrono::steady_clock::now();
    session.run(steps);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    MeasuredPoint pt;
    pt.ne = ne;
    pt.nranks = nranks;
    pt.elems_per_rank = 6 * ne * ne / nranks;
    pt.wall_s = wall;
    pt.step_s = wall / steps;
    pt.weak_efficiency =
        out.empty() ? 1.0 : out.front().step_s / pt.step_s;
    out.push_back(pt);
  }
  return out;
}

// Core groups per processor used for calibration; set once from
// --core-groups in main() before the first model() call.
int g_core_groups = 4;

const perf::MachineModel& model() {
  static const auto m = perf::MachineModel::calibrate(128, 25, 32,
                                                      g_core_groups);
  return m;
}

/// ne whose element count best matches elems_per_proc * procs.
int ne_for(long long elems_per_proc, long long procs) {
  return static_cast<int>(std::lround(
      std::sqrt(static_cast<double>(elems_per_proc * procs) / 6.0)));
}

bool write_json(const std::string& path,
                const std::vector<MeasuredPoint>& measured) {
  const auto& m = model();
  obs::Report rep("fig8_weak");
  rep.config().set("nlev", 128).set("qsize", 25).set("version", "athread");
  rep.root()
      .set("contention_model", "measured")
      .set("active_cgs", m.active_cgs)
      .set("contention_slowdown", m.contention_slowdown);
  obs::Json& curve = rep.root().arr("contention_curve");
  for (const auto& pt : m.contention) {
    curve.push()
        .set("active_cgs", pt.active_cgs)
        .set("slowdown", pt.slowdown)
        .set("per_cg_gbytes_s", pt.per_cg_gbytes_s);
  }
  obs::Json& records = rep.root().arr("records");
  auto add = [&](long long epp, long long p) {
    const int ne = ne_for(epp, p);
    const auto s = m.dycore_step(ne, p, perf::Version::kAthread);
    records.push()
        .set("elems_per_proc", static_cast<std::int64_t>(epp))
        .set("procs", static_cast<std::int64_t>(p))
        .set("ne", ne)
        .set("step_s", s.total_s)
        .set("pflops", s.pflops);
  };
  for (long long epp : {48LL, 192LL, 768LL}) {
    for (long long p : {512LL, 2048LL, 8192LL, 32768LL, 131072LL}) {
      add(epp, p);
    }
  }
  add(650, 155000);  // the 10,075,000-core headline point
  obs::Json& meas = rep.root().arr("measured");
  for (const auto& pt : measured) {
    meas.push()
        .set("ne", pt.ne)
        .set("nranks", pt.nranks)
        .set("elems_per_rank", pt.elems_per_rank)
        .set("wall_s", pt.wall_s)
        .set("step_s", pt.step_s)
        .set("weak_efficiency", pt.weak_efficiency);
  }
  return rep.write(path);
}

void print_measured(const std::vector<MeasuredPoint>& measured) {
  std::printf("=== Measured: model::Session weak scaling (threaded "
              "mini-MPI) ===\n");
  std::printf("%6s %8s %12s %10s %10s %10s\n", "ne", "nranks", "elems/rank",
              "wall s", "step s", "weak-eff");
  for (const auto& pt : measured)
    std::printf("%6d %8d %12d %10.3f %10.4f %9.1f%%\n", pt.ne, pt.nranks,
                pt.elems_per_rank, pt.wall_s, pt.step_s,
                100.0 * pt.weak_efficiency);
  std::printf("\n");
}

void print_figure() {
  const auto& m = model();
  std::printf("\n=== Figure 8: HOMME weak scaling (athread redesign) ===\n");
  std::printf("contention: measured on %d core groups, slowdown %.3fx\n",
              m.active_cgs, m.contention_slowdown);
  std::printf("%-12s %10s %8s %12s %12s\n", "elems/proc", "procs", "ne",
              "PFlops", "weak-eff");
  for (long long epp : {48LL, 192LL, 768LL}) {
    double base_rate = 0.0;
    for (long long p : {512LL, 2048LL, 8192LL, 32768LL, 131072LL}) {
      const int ne = ne_for(epp, p);
      const auto s = m.dycore_step(ne, p, perf::Version::kAthread);
      const double rate = s.pflops / static_cast<double>(p);
      if (p == 512) base_rate = rate;
      std::printf("%-12lld %10lld %8d %12.3f %11.1f%%\n", epp, p, ne,
                  s.pflops, 100.0 * rate / base_rate);
    }
  }
  {
    const long long p = 155000;
    const int ne = ne_for(650, p);
    const auto s = m.dycore_step(ne, p, perf::Version::kAthread);
    std::printf("%-12d %10lld %8d %12.3f   (10,075,000 cores)\n", 650, p, ne,
                s.pflops);
  }
  std::printf(
      "paper: 1.76 / 2.72 / 2.4 PFlops at 131072 procs (48/192/768 e/p, "
      "88-92%% eff); 3.3 PFlops at 155000 procs x 650 e/p (98.5%%)\n\n");
}

void register_benchmarks() {
  const auto& m = model();
  const auto s = m.dycore_step(ne_for(650, 155000), 155000,
                               perf::Version::kAthread);
  auto* b = benchmark::RegisterBenchmark(
      "weak/650epp/procs:155000", [s](benchmark::State& state) {
        for (auto _ : state) state.SetIterationTime(s.total_s);
        state.counters["PFlops"] = s.pflops;
      });
  b->UseManualTime()->Iterations(1);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opts = bench::BenchOptions::parse(argc, argv);
  g_core_groups = opts.core_groups_or(4);
  print_figure();
  const std::vector<MeasuredPoint> measured =
      measure_weak(opts.steps_or(opts.small ? 2 : 6));
  print_measured(measured);
  if (!opts.json_path.empty() && !write_json(opts.json_path, measured))
    return 1;
  register_benchmarks();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
