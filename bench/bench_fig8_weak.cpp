// Reproduces Figure 8: weak scalability with 48 / 192 / 650 / 768
// elements per process. The headline point: 650 elements/process on
// 155,000 processes = 10,075,000 cores at ~3.3 PFlops, 98.5% efficiency.

// Pass --json <path> for a machine-readable record of every plotted point.

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <string>

#include "obs/report.hpp"
#include "perf/machine_model.hpp"

namespace {

const perf::MachineModel& model() {
  static const auto m = perf::MachineModel::calibrate(128, 25, 32);
  return m;
}

/// ne whose element count best matches elems_per_proc * procs.
int ne_for(long long elems_per_proc, long long procs) {
  return static_cast<int>(std::lround(
      std::sqrt(static_cast<double>(elems_per_proc * procs) / 6.0)));
}

bool write_json(const std::string& path) {
  const auto& m = model();
  obs::Report rep("fig8_weak");
  rep.config().set("nlev", 128).set("qsize", 25).set("version", "athread");
  obs::Json& records = rep.root().arr("records");
  auto add = [&](long long epp, long long p) {
    const int ne = ne_for(epp, p);
    const auto s = m.dycore_step(ne, p, perf::Version::kAthread);
    records.push()
        .set("elems_per_proc", static_cast<std::int64_t>(epp))
        .set("procs", static_cast<std::int64_t>(p))
        .set("ne", ne)
        .set("step_s", s.total_s)
        .set("pflops", s.pflops);
  };
  for (long long epp : {48LL, 192LL, 768LL}) {
    for (long long p : {512LL, 2048LL, 8192LL, 32768LL, 131072LL}) {
      add(epp, p);
    }
  }
  add(650, 155000);  // the 10,075,000-core headline point
  return rep.write(path);
}

void print_figure() {
  const auto& m = model();
  std::printf("\n=== Figure 8: HOMME weak scaling (athread redesign) ===\n");
  std::printf("%-12s %10s %8s %12s %12s\n", "elems/proc", "procs", "ne",
              "PFlops", "weak-eff");
  for (long long epp : {48LL, 192LL, 768LL}) {
    double base_rate = 0.0;
    for (long long p : {512LL, 2048LL, 8192LL, 32768LL, 131072LL}) {
      const int ne = ne_for(epp, p);
      const auto s = m.dycore_step(ne, p, perf::Version::kAthread);
      const double rate = s.pflops / static_cast<double>(p);
      if (p == 512) base_rate = rate;
      std::printf("%-12lld %10lld %8d %12.3f %11.1f%%\n", epp, p, ne,
                  s.pflops, 100.0 * rate / base_rate);
    }
  }
  {
    const long long p = 155000;
    const int ne = ne_for(650, p);
    const auto s = m.dycore_step(ne, p, perf::Version::kAthread);
    std::printf("%-12d %10lld %8d %12.3f   (10,075,000 cores)\n", 650, p, ne,
                s.pflops);
  }
  std::printf(
      "paper: 1.76 / 2.72 / 2.4 PFlops at 131072 procs (48/192/768 e/p, "
      "88-92%% eff); 3.3 PFlops at 155000 procs x 650 e/p (98.5%%)\n\n");
}

void register_benchmarks() {
  const auto& m = model();
  const auto s = m.dycore_step(ne_for(650, 155000), 155000,
                               perf::Version::kAthread);
  auto* b = benchmark::RegisterBenchmark(
      "weak/650epp/procs:155000", [s](benchmark::State& state) {
        for (auto _ : state) state.SetIterationTime(s.total_s);
        state.counters["PFlops"] = s.pflops;
      });
  b->UseManualTime()->Iterations(1);
}

}  // namespace

int main(int argc, char** argv) {
  const obs::CliOptions cli = obs::extract_cli(argc, argv);
  print_figure();
  if (!cli.json_path.empty() && !write_json(cli.json_path)) return 1;
  register_benchmarks();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
