// Reproduces Figure 6: whole-CAM simulation speed (SYPD) for ne30
// (100 km) with the three ports and ne120 (25 km) with the OpenACC port,
// as a function of process count. Two documented calibration anchors
// (ne30/5400/athread = 21.5 SYPD, ne120/28800/openacc = 3.4 SYPD);
// everything else is the model's prediction.
//
// Alongside the analytic figure, a measured section drives a real
// model::Session at a small resolution on both backends and reports the
// SYPD this host actually sustains.

// Pass --json <path> for a machine-readable record of every plotted point.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "model/session.hpp"
#include "obs/report.hpp"
#include "perf/machine_model.hpp"

namespace {

const perf::MachineModel& model() {
  static const auto m = perf::MachineModel::calibrate(128, 25, 32);
  return m;
}

struct MeasuredPoint {
  std::string backend;
  int ne = 0;
  int steps = 0;
  double dt_s = 0.0;
  double wall_s = 0.0;
  double sypd = 0.0;
};

/// Simulated-years-per-day a Session sustains over \p steps steps.
MeasuredPoint measure_sypd(model::SessionConfig::Backend backend,
                           const char* name, int ne, int steps) {
  model::Session session(model::SessionConfig{}
                             .with_ne(ne)
                             .with_levels(8, 2)
                             .with_backend(backend));
  session.step();  // warm: first step touches every buffer
  const auto t0 = std::chrono::steady_clock::now();
  session.run(steps);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  MeasuredPoint pt;
  pt.backend = name;
  pt.ne = ne;
  pt.steps = steps;
  pt.dt_s = session.dt();
  pt.wall_s = wall;
  const double sim_years = steps * session.dt() / (365.25 * 86400.0);
  pt.sypd = wall > 0.0 ? sim_years / (wall / 86400.0) : 0.0;
  return pt;
}

std::vector<MeasuredPoint> measured_points(int ne, int steps) {
  return {measure_sypd(model::SessionConfig::Backend::kHost, "host", ne,
                       steps),
          measure_sypd(model::SessionConfig::Backend::kPipeline, "pipeline",
                       ne, steps)};
}

bool write_json(const std::string& path,
                const std::vector<MeasuredPoint>& measured) {
  const auto& m = model();
  obs::Report rep("fig6_sypd");
  rep.config().set("nlev", 128).set("qsize", 25).set("physics_columns", 32);
  obs::Json& records = rep.root().arr("records");
  for (long long p : {216LL, 600LL, 900LL, 1350LL, 5400LL}) {
    for (auto v : {perf::Version::kOriginal, perf::Version::kOpenAcc,
                   perf::Version::kAthread}) {
      records.push()
          .set("ne", 30)
          .set("procs", static_cast<std::int64_t>(p))
          .set("version", perf::to_string(v))
          .set("sypd", m.sypd(30, p, v));
    }
  }
  for (long long p : {2400LL, 9600LL, 14400LL, 21600LL, 24000LL, 28800LL}) {
    records.push()
        .set("ne", 120)
        .set("procs", static_cast<std::int64_t>(p))
        .set("version", perf::to_string(perf::Version::kOpenAcc))
        .set("sypd", m.sypd(120, p, perf::Version::kOpenAcc));
  }
  obs::Json& meas = rep.root().arr("measured");
  for (const auto& pt : measured) {
    meas.push()
        .set("backend", pt.backend)
        .set("ne", pt.ne)
        .set("steps", pt.steps)
        .set("dt_s", pt.dt_s)
        .set("wall_s", pt.wall_s)
        .set("sypd", pt.sypd);
  }
  return rep.write(path);
}

void print_figure() {
  const auto& m = model();
  std::printf("\n=== Figure 6 (left): ne30 whole-CAM SYPD ===\n");
  std::printf("%8s %10s %10s %10s\n", "procs", "ori", "openacc", "athread");
  for (long long p : {216, 600, 900, 1350, 5400}) {
    std::printf("%8lld %10.2f %10.2f %10.2f\n", p,
                m.sypd(30, p, perf::Version::kOriginal),
                m.sypd(30, p, perf::Version::kOpenAcc),
                m.sypd(30, p, perf::Version::kAthread));
  }
  std::printf("paper: 21.5 SYPD at 5400 processes (athread)\n");
  std::printf("\n=== Figure 6 (right): ne120 whole-CAM SYPD (openacc) ===\n");
  std::printf("%8s %10s\n", "procs", "sypd");
  for (long long p : {2400, 9600, 14400, 21600, 24000, 28800}) {
    std::printf("%8lld %10.2f\n", p, m.sypd(120, p, perf::Version::kOpenAcc));
  }
  std::printf("paper: 3.4 SYPD at 28800 processes\n\n");
}

void print_measured(const std::vector<MeasuredPoint>& measured) {
  std::printf("=== Measured: model::Session SYPD on this host ===\n");
  std::printf("%10s %6s %8s %10s %10s %10s\n", "backend", "ne", "steps",
              "dt s", "wall s", "SYPD");
  for (const auto& pt : measured)
    std::printf("%10s %6d %8d %10.1f %10.3f %10.3f\n", pt.backend.c_str(),
                pt.ne, pt.steps, pt.dt_s, pt.wall_s, pt.sypd);
  std::printf("\n");
}

void register_benchmarks(const std::vector<MeasuredPoint>& measured) {
  const auto& m = model();
  for (long long p : {216LL, 5400LL}) {
    for (auto v : {perf::Version::kOriginal, perf::Version::kOpenAcc,
                   perf::Version::kAthread}) {
      const double sypd = m.sypd(30, p, v);
      auto* b = benchmark::RegisterBenchmark(
          ("ne30/" + perf::to_string(v) + "/procs:" + std::to_string(p))
              .c_str(),
          [sypd](benchmark::State& state) {
            for (auto _ : state) state.SetIterationTime(1.0 / sypd);
            state.counters["SYPD"] = sypd;
          });
      b->UseManualTime()->Iterations(1);
    }
  }
  for (const auto& pt : measured) {
    const double wall = pt.wall_s;
    const double sypd = pt.sypd;
    auto* b = benchmark::RegisterBenchmark(
        ("measured/ne" + std::to_string(pt.ne) + "/" + pt.backend).c_str(),
        [wall, sypd](benchmark::State& state) {
          for (auto _ : state) state.SetIterationTime(wall);
          state.counters["SYPD"] = sypd;
        });
    b->UseManualTime()->Iterations(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opts = bench::BenchOptions::parse(argc, argv);
  print_figure();
  const std::vector<MeasuredPoint> measured = measured_points(
      opts.ne_or(4), opts.steps_or(opts.small ? 2 : 10));
  print_measured(measured);
  if (!opts.json_path.empty() && !write_json(opts.json_path, measured))
    return 1;
  register_benchmarks(measured);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
