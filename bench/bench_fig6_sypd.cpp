// Reproduces Figure 6: whole-CAM simulation speed (SYPD) for ne30
// (100 km) with the three ports and ne120 (25 km) with the OpenACC port,
// as a function of process count. Two documented calibration anchors
// (ne30/5400/athread = 21.5 SYPD, ne120/28800/openacc = 3.4 SYPD);
// everything else is the model's prediction.

// Pass --json <path> for a machine-readable record of every plotted point.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "obs/report.hpp"
#include "perf/machine_model.hpp"

namespace {

const perf::MachineModel& model() {
  static const auto m = perf::MachineModel::calibrate(128, 25, 32);
  return m;
}

bool write_json(const std::string& path) {
  const auto& m = model();
  obs::Report rep("fig6_sypd");
  rep.config().set("nlev", 128).set("qsize", 25).set("physics_columns", 32);
  obs::Json& records = rep.root().arr("records");
  for (long long p : {216LL, 600LL, 900LL, 1350LL, 5400LL}) {
    for (auto v : {perf::Version::kOriginal, perf::Version::kOpenAcc,
                   perf::Version::kAthread}) {
      records.push()
          .set("ne", 30)
          .set("procs", static_cast<std::int64_t>(p))
          .set("version", perf::to_string(v))
          .set("sypd", m.sypd(30, p, v));
    }
  }
  for (long long p : {2400LL, 9600LL, 14400LL, 21600LL, 24000LL, 28800LL}) {
    records.push()
        .set("ne", 120)
        .set("procs", static_cast<std::int64_t>(p))
        .set("version", perf::to_string(perf::Version::kOpenAcc))
        .set("sypd", m.sypd(120, p, perf::Version::kOpenAcc));
  }
  return rep.write(path);
}

void print_figure() {
  const auto& m = model();
  std::printf("\n=== Figure 6 (left): ne30 whole-CAM SYPD ===\n");
  std::printf("%8s %10s %10s %10s\n", "procs", "ori", "openacc", "athread");
  for (long long p : {216, 600, 900, 1350, 5400}) {
    std::printf("%8lld %10.2f %10.2f %10.2f\n", p,
                m.sypd(30, p, perf::Version::kOriginal),
                m.sypd(30, p, perf::Version::kOpenAcc),
                m.sypd(30, p, perf::Version::kAthread));
  }
  std::printf("paper: 21.5 SYPD at 5400 processes (athread)\n");
  std::printf("\n=== Figure 6 (right): ne120 whole-CAM SYPD (openacc) ===\n");
  std::printf("%8s %10s\n", "procs", "sypd");
  for (long long p : {2400, 9600, 14400, 21600, 24000, 28800}) {
    std::printf("%8lld %10.2f\n", p, m.sypd(120, p, perf::Version::kOpenAcc));
  }
  std::printf("paper: 3.4 SYPD at 28800 processes\n\n");
}

void register_benchmarks() {
  const auto& m = model();
  for (long long p : {216LL, 5400LL}) {
    for (auto v : {perf::Version::kOriginal, perf::Version::kOpenAcc,
                   perf::Version::kAthread}) {
      const double sypd = m.sypd(30, p, v);
      auto* b = benchmark::RegisterBenchmark(
          ("ne30/" + perf::to_string(v) + "/procs:" + std::to_string(p))
              .c_str(),
          [sypd](benchmark::State& state) {
            for (auto _ : state) state.SetIterationTime(1.0 / sypd);
            state.counters["SYPD"] = sypd;
          });
      b->UseManualTime()->Iterations(1);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const obs::CliOptions cli = obs::extract_cli(argc, argv);
  print_figure();
  if (!cli.json_path.empty() && !write_json(cli.json_path)) return 1;
  register_benchmarks();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
