// Reproduces Table 1 and Figure 5 of the paper: the six key dynamics
// kernels on Intel core / MPE / OpenACC(64 CPE) / Athread(64 CPE).
//
// google-benchmark timings use manual time set to the *modeled* seconds
// from the SW26010 simulator (functional execution + timing model); the
// printed table compares our ratios against the paper's.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "accel/table1.hpp"

namespace {

const std::vector<accel::Table1Row>& rows() {
  static const auto r = [] {
    accel::Table1Config cfg;  // 64 elements, 128 levels, 25 tracers
    return accel::run_table1(cfg);
  }();
  return r;
}

void print_table() {
  std::printf(
      "\n=== Table 1: key kernels, seconds per invocation (64 elements / "
      "process, 128 levels, 25 tracers) ===\n");
  std::printf("%-24s %11s %11s %11s %11s\n", "kernel", "intel", "mpe",
              "openacc", "athread");
  for (const auto& r : rows()) {
    std::printf("%-24s %11.5f %11.5f %11.5f %11.5f\n", r.name.c_str(),
                r.intel_s, r.mpe_s, r.acc_s, r.athread_s);
  }
  std::printf(
      "\n=== Figure 5: speedups (paper ratios in brackets; Intel core = 1) "
      "===\n");
  std::printf("%-24s %16s %16s %18s\n", "kernel", "acc/intel",
              "athread/intel", "athread/acc");
  for (const auto& r : rows()) {
    std::printf("%-24s %8.2f [%5.2f] %8.1f [7-46x] %10.1f\n", r.name.c_str(),
                r.acc_s / r.intel_s, r.paper_acc / r.paper_intel,
                r.intel_s / r.athread_s, r.athread_speedup_vs_acc());
  }
  std::printf(
      "\nShape checks: MPE slowest serial platform; OpenACC rhs slower than "
      "Intel (paper 5.9x, see above); Athread fastest everywhere.\n\n");
}

void register_benchmarks() {
  for (const auto& r : rows()) {
    for (auto [plat, secs] :
         {std::pair{"intel", r.intel_s}, std::pair{"mpe", r.mpe_s},
          std::pair{"openacc", r.acc_s}, std::pair{"athread", r.athread_s}}) {
      auto* b = benchmark::RegisterBenchmark(
          (r.name + "/" + plat).c_str(),
          [secs](benchmark::State& state) {
            for (auto _ : state) {
              state.SetIterationTime(secs);
            }
          });
      b->UseManualTime()->Iterations(1);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  print_table();
  register_benchmarks();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
