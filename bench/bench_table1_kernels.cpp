// Reproduces Table 1 and Figure 5 of the paper: the six key dynamics
// kernels on Intel core / MPE / OpenACC(64 CPE) / Athread(64 CPE).
//
// google-benchmark timings use manual time set to the *modeled* seconds
// from the SW26010 simulator (functional execution + timing model); the
// printed table compares our ratios against the paper's.
//
// Flags (extracted before google-benchmark sees argv):
//   --json <path>   per-kernel numbers as machine-readable JSON
//   --trace <path>  Chrome trace-event timeline of every modeled launch
//                   ("table1/cg" track; open in Perfetto)
//   --small         reduced problem size (CI smoke: 8 elements, 32 levels)

#include <benchmark/benchmark.h>

#include "bench_common.hpp"

#include <cstdio>
#include <string>

#include "accel/table1.hpp"
#include "obs/report.hpp"

namespace {

accel::Table1Config g_cfg;
obs::Tracer g_tracer(obs::ClockDomain::kVirtual);

const std::vector<accel::Table1Row>& rows() {
  static const auto r = [] { return accel::run_table1(g_cfg, &g_tracer); }();
  return r;
}

void print_table() {
  std::printf(
      "\n=== Table 1: key kernels, seconds per invocation (%d elements / "
      "process, %d levels, %d tracers) ===\n",
      g_cfg.nelem, g_cfg.nlev, g_cfg.qsize);
  std::printf("%-24s %11s %11s %11s %11s\n", "kernel", "intel", "mpe",
              "openacc", "athread");
  for (const auto& r : rows()) {
    std::printf("%-24s %11.5f %11.5f %11.5f %11.5f\n", r.name.c_str(),
                r.intel_s, r.mpe_s, r.acc_s, r.athread_s);
  }
  std::printf(
      "\n=== Figure 5: speedups (paper ratios in brackets; Intel core = 1) "
      "===\n");
  std::printf("%-24s %16s %16s %18s\n", "kernel", "acc/intel",
              "athread/intel", "athread/acc");
  for (const auto& r : rows()) {
    std::printf("%-24s %8.2f [%5.2f] %8.1f [7-46x] %10.1f\n", r.name.c_str(),
                r.acc_s / r.intel_s, r.paper_acc / r.paper_intel,
                r.intel_s / r.athread_s, r.athread_speedup_vs_acc());
  }
  std::printf(
      "\nShape checks: MPE slowest serial platform; OpenACC rhs slower than "
      "Intel (paper 5.9x, see above); Athread fastest everywhere.\n\n");
}

bool write_json(const std::string& path) {
  obs::Report rep("table1_kernels");
  rep.config()
      .set("nelem", g_cfg.nelem)
      .set("nlev", g_cfg.nlev)
      .set("qsize", g_cfg.qsize);
  obs::Json& kernels = rep.root().arr("kernels");
  for (const auto& r : rows()) {
    kernels.push()
        .set("name", r.name)
        .set("intel_s", r.intel_s)
        .set("mpe_s", r.mpe_s)
        .set("openacc_s", r.acc_s)
        .set("athread_s", r.athread_s)
        .set("flops", r.flops)
        .set("openacc_dma_bytes", r.acc_dma_bytes)
        .set("athread_dma_bytes", r.athread_dma_bytes)
        .set("athread_dma_reused_bytes", r.athread_dma_reused)
        .set("athread_dma_cold_bytes", r.athread_dma_cold)
        .set("athread_fallbacks", r.athread_fallbacks);
  }
  rep.add_summary(g_tracer.summary());
  return rep.write(path);
}

void register_benchmarks() {
  for (const auto& r : rows()) {
    for (auto [plat, secs] :
         {std::pair{"intel", r.intel_s}, std::pair{"mpe", r.mpe_s},
          std::pair{"openacc", r.acc_s}, std::pair{"athread", r.athread_s}}) {
      auto* b = benchmark::RegisterBenchmark(
          (r.name + "/" + plat).c_str(),
          [secs](benchmark::State& state) {
            for (auto _ : state) {
              state.SetIterationTime(secs);
            }
          });
      b->UseManualTime()->Iterations(1);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opts = bench::BenchOptions::parse(argc, argv);
  if (opts.small) {
    g_cfg.nelem = 8;
    g_cfg.nlev = 32;
    g_cfg.qsize = 4;
  }
  // The tracer feeds the counter path either way; only keep the (large)
  // per-launch timeline when it is actually going to be exported.
  if (!opts.trace_path.empty() || !opts.json_path.empty()) g_tracer.enable();
  print_table();
  if (!opts.json_path.empty() && !write_json(opts.json_path)) return 1;
  if (!opts.trace_path.empty() &&
      !g_tracer.write_chrome_trace(opts.trace_path)) {
    return 1;
  }
  register_benchmarks();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
