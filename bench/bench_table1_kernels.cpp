// Reproduces Table 1 and Figure 5 of the paper: the six key dynamics
// kernels on Intel core / MPE / OpenACC(64 CPE) / Athread(64 CPE).
//
// google-benchmark timings use manual time set to the *modeled* seconds
// from the SW26010 simulator (functional execution + timing model); the
// printed table compares our ratios against the paper's.

// Pass --json <path> to also dump the per-kernel numbers (seconds per
// platform, measured flops, DMA traffic split) as machine-readable JSON.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <string>

#include "accel/table1.hpp"

namespace {

const std::vector<accel::Table1Row>& rows() {
  static const auto r = [] {
    accel::Table1Config cfg;  // 64 elements, 128 levels, 25 tracers
    return accel::run_table1(cfg);
  }();
  return r;
}

void print_table() {
  std::printf(
      "\n=== Table 1: key kernels, seconds per invocation (64 elements / "
      "process, 128 levels, 25 tracers) ===\n");
  std::printf("%-24s %11s %11s %11s %11s\n", "kernel", "intel", "mpe",
              "openacc", "athread");
  for (const auto& r : rows()) {
    std::printf("%-24s %11.5f %11.5f %11.5f %11.5f\n", r.name.c_str(),
                r.intel_s, r.mpe_s, r.acc_s, r.athread_s);
  }
  std::printf(
      "\n=== Figure 5: speedups (paper ratios in brackets; Intel core = 1) "
      "===\n");
  std::printf("%-24s %16s %16s %18s\n", "kernel", "acc/intel",
              "athread/intel", "athread/acc");
  for (const auto& r : rows()) {
    std::printf("%-24s %8.2f [%5.2f] %8.1f [7-46x] %10.1f\n", r.name.c_str(),
                r.acc_s / r.intel_s, r.paper_acc / r.paper_intel,
                r.intel_s / r.athread_s, r.athread_speedup_vs_acc());
  }
  std::printf(
      "\nShape checks: MPE slowest serial platform; OpenACC rhs slower than "
      "Intel (paper 5.9x, see above); Athread fastest everywhere.\n\n");
}

bool write_json(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_table1_kernels: cannot open %s for writing\n",
                 path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"config\": {\"nelem\": 64, \"nlev\": 128, "
                  "\"qsize\": 25},\n  \"kernels\": [\n");
  const auto& rs = rows();
  for (std::size_t i = 0; i < rs.size(); ++i) {
    const auto& r = rs[i];
    std::fprintf(
        f,
        "    {\"name\": \"%s\", \"intel_s\": %.9e, \"mpe_s\": %.9e, "
        "\"openacc_s\": %.9e, \"athread_s\": %.9e, \"flops\": %llu, "
        "\"openacc_dma_bytes\": %llu, \"athread_dma_bytes\": %llu, "
        "\"athread_dma_reused_bytes\": %llu, "
        "\"athread_dma_cold_bytes\": %llu, "
        "\"athread_fallbacks\": %llu}%s\n",
        r.name.c_str(), r.intel_s, r.mpe_s, r.acc_s, r.athread_s,
        static_cast<unsigned long long>(r.flops),
        static_cast<unsigned long long>(r.acc_dma_bytes),
        static_cast<unsigned long long>(r.athread_dma_bytes),
        static_cast<unsigned long long>(r.athread_dma_reused),
        static_cast<unsigned long long>(r.athread_dma_cold),
        static_cast<unsigned long long>(r.athread_fallbacks),
        i + 1 < rs.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

/// Consume "--json <path>" (or "--json=<path>") from argv so the
/// remaining flags can go to benchmark::Initialize untouched.
std::string extract_json_path(int& argc, char** argv) {
  std::string path;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      path = argv[++i];
    } else if (arg.rfind("--json=", 0) == 0) {
      path = arg.substr(7);
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  return path;
}

void register_benchmarks() {
  for (const auto& r : rows()) {
    for (auto [plat, secs] :
         {std::pair{"intel", r.intel_s}, std::pair{"mpe", r.mpe_s},
          std::pair{"openacc", r.acc_s}, std::pair{"athread", r.athread_s}}) {
      auto* b = benchmark::RegisterBenchmark(
          (r.name + "/" + plat).c_str(),
          [secs](benchmark::State& state) {
            for (auto _ : state) {
              state.SetIterationTime(secs);
            }
          });
      b->UseManualTime()->Iterations(1);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = extract_json_path(argc, argv);
  print_table();
  if (!json_path.empty() && !write_json(json_path)) return 1;
  register_benchmarks();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
