// Ablation for the section 7.6 claims: the redesigned bndry_exchangev
// (a) overlaps computation with communication, cutting dycore time by up
// to 23% in large runs, and (b) removes the pack-buffer staging copies,
// another ~30%. Functional copy counters come from the real distributed
// implementation; machine-scale time deltas from the analytic model.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <mutex>

#include "homme/bndry.hpp"
#include "perf/machine_model.hpp"

namespace {

void print_copy_ablation() {
  auto m = mesh::CubedSphere::build(4, mesh::kEarthRadius);
  auto part = mesh::Partition::build(m, 6);
  auto plan = mesh::CommPlan::build(m, part);
  const int nlev = 16;

  std::printf("\n=== Ablation (section 7.6b): pack-buffer copies in "
              "bndry_exchangev, 6 ranks, ne4, 16 levels ===\n");
  std::size_t copies[2] = {0, 0}, msgs[2] = {0, 0};
  net::Cluster cluster(6);
  std::mutex mu;
  int mode_idx = 0;
  for (auto mode : {homme::BndryExchange::Mode::kOriginal,
                    homme::BndryExchange::Mode::kOverlap}) {
    cluster.run([&](net::Rank& r) {
      homme::BndryExchange bx(m, part, plan, r.rank());
      std::vector<std::vector<double>> local(
          static_cast<std::size_t>(bx.nlocal()));
      std::vector<double*> ptrs(static_cast<std::size_t>(bx.nlocal()));
      for (int le = 0; le < bx.nlocal(); ++le) {
        local[static_cast<std::size_t>(le)].assign(
            static_cast<std::size_t>(nlev) * mesh::kNpp,
            1.0 + le + r.rank());
        ptrs[static_cast<std::size_t>(le)] =
            local[static_cast<std::size_t>(le)].data();
      }
      bx.dss_levels(r, ptrs, nlev, mode);
      std::lock_guard<std::mutex> lock(mu);
      copies[mode_idx] += bx.last_copy_bytes();
      msgs[mode_idx] += bx.last_msg_bytes();
    });
    ++mode_idx;
  }
  std::printf("original (pack-buffer): %8.1f KB staged copies, %8.1f KB MPI\n",
              copies[0] / 1e3, msgs[0] / 1e3);
  std::printf("redesign (direct):      %8.1f KB staged copies, %8.1f KB MPI\n",
              copies[1] / 1e3, msgs[1] / 1e3);
  std::printf("copy reduction: %.0f%% (paper: removing the redundant copies "
              "cut dycore time ~30%%)\n",
              100.0 * (1.0 - static_cast<double>(copies[1]) /
                                 static_cast<double>(copies[0])));
}

void print_overlap_ablation() {
  const auto m = perf::MachineModel::calibrate(128, 25, 32);
  std::printf("\n=== Ablation (section 7.6a): computation/communication "
              "overlap at machine scale ===\n");
  std::printf("%-8s %10s %16s %16s %10s\n", "case", "procs", "no-overlap s",
              "overlap s", "saved");
  for (auto [ne, p] : {std::pair{256, 32768LL}, std::pair{1024, 32768LL},
                       std::pair{1024, 131072LL}}) {
    const auto off = m.dycore_step(ne, p, perf::Version::kAthread, false);
    const auto on = m.dycore_step(ne, p, perf::Version::kAthread, true);
    std::printf("ne%-6d %10lld %16.5f %16.5f %9.1f%%\n", ne, p, off.total_s,
                on.total_s, 100.0 * (off.total_s - on.total_s) / off.total_s);
  }
  std::printf("paper: overlapping all three Euler-step halo exchanges cut "
              "HOMME runtime by 23%% in the best cases\n\n");
}

/// Wall time of one functional distributed DSS (6 ranks, both modes).
void BM_DssExchange(benchmark::State& state) {
  auto m = mesh::CubedSphere::build(3, mesh::kEarthRadius);
  auto part = mesh::Partition::build(m, 4);
  auto plan = mesh::CommPlan::build(m, part);
  const auto mode = state.range(0) == 0
                        ? homme::BndryExchange::Mode::kOriginal
                        : homme::BndryExchange::Mode::kOverlap;
  const int nlev = 8;
  net::Cluster cluster(4);
  for (auto _ : state) {
    cluster.run([&](net::Rank& r) {
      homme::BndryExchange bx(m, part, plan, r.rank());
      std::vector<std::vector<double>> local(
          static_cast<std::size_t>(bx.nlocal()));
      std::vector<double*> ptrs(static_cast<std::size_t>(bx.nlocal()));
      for (int le = 0; le < bx.nlocal(); ++le) {
        local[static_cast<std::size_t>(le)].assign(
            static_cast<std::size_t>(nlev) * mesh::kNpp, 1.0);
        ptrs[static_cast<std::size_t>(le)] =
            local[static_cast<std::size_t>(le)].data();
      }
      bx.dss_levels(r, ptrs, nlev, mode);
    });
  }
}
BENCHMARK(BM_DssExchange)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_copy_ablation();
  print_overlap_ablation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
