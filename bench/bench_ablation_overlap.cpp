// Ablation for the section 7.6 claims: the redesigned bndry_exchangev
// (a) overlaps computation with communication, cutting dycore time by up
// to 23% in large runs, and (b) removes the pack-buffer staging copies,
// another ~30%. Functional copy counters come from the real distributed
// implementation; machine-scale time deltas from the analytic model.
//
// Flags: --trace <path> captures a Chrome trace of one full distributed
// dycore step in each mode on 2 ranks — side by side in one file via the
// tracer pid offsets. The overlap mode is the only one that shows
// bndry:inner_compute (interior work running while the sends posted in
// bndry:post_send are in flight); the original mode instead serializes
// bndry:compute before bndry:send. --json <path> dumps the per-phase
// comm-share attribution read off the same traces.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <mutex>
#include <string>

#include "bench_common.hpp"
#include "homme/bndry.hpp"
#include "model/session.hpp"
#include "obs/report.hpp"
#include "perf/machine_model.hpp"

namespace {

/// The two traced sessions stay alive until their wall-domain tracers are
/// merged into one exported file; labels / pid offsets keep the modes
/// apart there.
std::unique_ptr<model::Session> g_sess_original;
std::unique_ptr<model::Session> g_sess_overlap;

struct ModeAttribution {
  const char* mode;
  double step_us = 0.0;          ///< summed dyn:step over both ranks
  double wait_us = 0.0;          ///< bndry:wait_unpack (recv + unpack)
  double send_us = 0.0;          ///< bndry:send or bndry:post_send
  double inner_us = 0.0;         ///< bndry:inner_compute (overlap only)
  std::uint64_t inner_count = 0; ///< 0 in the original mode by design
  double comm_share = 0.0;       ///< (wait+send) / step
};

/// One full distributed model::Session step on 2 ranks with every layer
/// reporting into the session's tracer, then the section 7.6 attribution
/// off its summary. The session outlives the call via \p slot.
ModeAttribution run_traced_step(std::unique_ptr<model::Session>& slot,
                                const char* label, int pid_offset,
                                homme::BndryExchange::Mode mode) {
  slot = std::make_unique<model::Session>(
      model::SessionConfig{}
          .with_ne(2)
          .with_levels(8, 2)
          .with_ranks(2)
          .with_exchange(mode)
          .with_remap_freq(1)  // exercise dyn:remap in the one traced step
          .with_trace(true, obs::ClockDomain::kWall));
  slot->tracer().set_label(label);
  slot->tracer().set_pid_offset(pid_offset);
  slot->step();

  const obs::Summary sum = slot->summary();
  ModeAttribution a;
  a.mode = label;
  a.step_us = obs::phase_total_us(sum, "dyn:step");
  a.wait_us = obs::phase_total_us(sum, "bndry:wait_unpack");
  a.send_us = obs::phase_total_us(sum, "bndry:send") +
              obs::phase_total_us(sum, "bndry:post_send");
  a.inner_us = obs::phase_total_us(sum, "bndry:inner_compute");
  a.inner_count = obs::phase_count(sum, "bndry:inner_compute");
  if (a.step_us > 0.0) a.comm_share = (a.wait_us + a.send_us) / a.step_us;
  return a;
}

void print_attribution(const ModeAttribution& a) {
  std::printf("%-10s %12.0f %12.0f %12.0f %12.0f %6llu %9.1f%%\n", a.mode,
              a.step_us, a.wait_us, a.send_us, a.inner_us,
              static_cast<unsigned long long>(a.inner_count),
              100.0 * a.comm_share);
}

void print_copy_ablation() {
  auto m = mesh::CubedSphere::build(4, mesh::kEarthRadius);
  auto part = mesh::Partition::build(m, 6);
  auto plan = mesh::CommPlan::build(m, part);
  const int nlev = 16;

  std::printf("\n=== Ablation (section 7.6b): pack-buffer copies in "
              "bndry_exchangev, 6 ranks, ne4, 16 levels ===\n");
  std::size_t copies[2] = {0, 0}, msgs[2] = {0, 0};
  net::Cluster cluster(6);
  std::mutex mu;
  int mode_idx = 0;
  for (auto mode : {homme::BndryExchange::Mode::kOriginal,
                    homme::BndryExchange::Mode::kOverlap}) {
    cluster.run([&](net::Rank& r) {
      homme::BndryExchange bx(m, part, plan, r.rank());
      std::vector<std::vector<double>> local(
          static_cast<std::size_t>(bx.nlocal()));
      std::vector<double*> ptrs(static_cast<std::size_t>(bx.nlocal()));
      for (int le = 0; le < bx.nlocal(); ++le) {
        local[static_cast<std::size_t>(le)].assign(
            static_cast<std::size_t>(nlev) * mesh::kNpp,
            1.0 + le + r.rank());
        ptrs[static_cast<std::size_t>(le)] =
            local[static_cast<std::size_t>(le)].data();
      }
      bx.dss_levels(r, ptrs, nlev, mode);
      std::lock_guard<std::mutex> lock(mu);
      copies[mode_idx] += bx.last_copy_bytes();
      msgs[mode_idx] += bx.last_msg_bytes();
    });
    ++mode_idx;
  }
  std::printf("original (pack-buffer): %8.1f KB staged copies, %8.1f KB MPI\n",
              copies[0] / 1e3, msgs[0] / 1e3);
  std::printf("redesign (direct):      %8.1f KB staged copies, %8.1f KB MPI\n",
              copies[1] / 1e3, msgs[1] / 1e3);
  std::printf("copy reduction: %.0f%% (paper: removing the redundant copies "
              "cut dycore time ~30%%)\n",
              100.0 * (1.0 - static_cast<double>(copies[1]) /
                                 static_cast<double>(copies[0])));
}

void print_overlap_ablation() {
  const auto m = perf::MachineModel::calibrate(128, 25, 32);
  std::printf("\n=== Ablation (section 7.6a): computation/communication "
              "overlap at machine scale ===\n");
  std::printf("%-8s %10s %16s %16s %10s\n", "case", "procs", "no-overlap s",
              "overlap s", "saved");
  for (auto [ne, p] : {std::pair{256, 32768LL}, std::pair{1024, 32768LL},
                       std::pair{1024, 131072LL}}) {
    const auto off = m.dycore_step(ne, p, perf::Version::kAthread, false);
    const auto on = m.dycore_step(ne, p, perf::Version::kAthread, true);
    std::printf("ne%-6d %10lld %16.5f %16.5f %9.1f%%\n", ne, p, off.total_s,
                on.total_s, 100.0 * (off.total_s - on.total_s) / off.total_s);
  }
  std::printf("paper: overlapping all three Euler-step halo exchanges cut "
              "HOMME runtime by 23%% in the best cases\n\n");
}

/// Wall time of one functional distributed DSS (6 ranks, both modes).
void BM_DssExchange(benchmark::State& state) {
  auto m = mesh::CubedSphere::build(3, mesh::kEarthRadius);
  auto part = mesh::Partition::build(m, 4);
  auto plan = mesh::CommPlan::build(m, part);
  const auto mode = state.range(0) == 0
                        ? homme::BndryExchange::Mode::kOriginal
                        : homme::BndryExchange::Mode::kOverlap;
  const int nlev = 8;
  net::Cluster cluster(4);
  for (auto _ : state) {
    cluster.run([&](net::Rank& r) {
      homme::BndryExchange bx(m, part, plan, r.rank());
      std::vector<std::vector<double>> local(
          static_cast<std::size_t>(bx.nlocal()));
      std::vector<double*> ptrs(static_cast<std::size_t>(bx.nlocal()));
      for (int le = 0; le < bx.nlocal(); ++le) {
        local[static_cast<std::size_t>(le)].assign(
            static_cast<std::size_t>(nlev) * mesh::kNpp, 1.0);
        ptrs[static_cast<std::size_t>(le)] =
            local[static_cast<std::size_t>(le)].data();
      }
      bx.dss_levels(r, ptrs, nlev, mode);
    });
  }
}
BENCHMARK(BM_DssExchange)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opts = bench::BenchOptions::parse(argc, argv);
  print_copy_ablation();
  print_overlap_ablation();

  const ModeAttribution orig = run_traced_step(
      g_sess_original, "original", 0, homme::BndryExchange::Mode::kOriginal);
  const ModeAttribution over = run_traced_step(
      g_sess_overlap, "overlap", 1000, homme::BndryExchange::Mode::kOverlap);
  std::printf("=== Traced step (2 ranks, ne2, 8 levels): section 7.6 "
              "comm-share attribution ===\n");
  std::printf("%-10s %12s %12s %12s %12s %6s %10s\n", "mode", "step us",
              "wait us", "send us", "inner us", "#inner", "comm");
  print_attribution(orig);
  print_attribution(over);
  std::printf("(bndry:inner_compute exists only in the overlap redesign: it "
              "is the interior work running while sends are in flight)\n\n");

  if (!opts.json_path.empty()) {
    obs::Report rep("ablation_overlap");
    rep.config().set("ranks", 2).set("mesh_ne", 2).set("nlev", 8).set(
        "qsize", 2);
    obs::Json& modes = rep.root().arr("modes");
    for (const auto* a : {&orig, &over}) {
      modes.push()
          .set("mode", a->mode)
          .set("step_us", a->step_us)
          .set("wait_unpack_us", a->wait_us)
          .set("send_us", a->send_us)
          .set("inner_compute_us", a->inner_us)
          .set("inner_compute_count", a->inner_count)
          .set("comm_share", a->comm_share);
    }
    if (!rep.write(opts.json_path)) return 1;
  }
  if (!opts.trace_path.empty()) {
    obs::Tracer* tracers[] = {&g_sess_original->tracer(),
                              &g_sess_overlap->tracer()};
    if (!obs::write_chrome_trace(opts.trace_path, tracers)) return 1;
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
