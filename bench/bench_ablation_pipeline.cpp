// Ablation for the kernel-pipeline layer: one dynamics-step chain
// (euler_step -> hypervis_dp2 -> biharmonic_dp3d -> vertical_remap) run
// as ONE fused pipeline with cross-kernel LDM residency versus the same
// four kernels as isolated launches. This isolates the section 7.3
// cross-loop reuse idea from the per-kernel wins: the fused chain must
// be bit-identical and move strictly fewer DMA bytes, because the
// element fields staged by one kernel are still home in the LDM when
// the next kernel leases them.
//
// The process aborts (exit 1) if either invariant fails, so the bench
// doubles as a hard check when run in CI.

#include <benchmark/benchmark.h>

#include "bench_common.hpp"

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "accel/euler_acc.hpp"
#include "accel/hypervis_acc.hpp"
#include "accel/pipeline.hpp"
#include "accel/remap_acc.hpp"
#include "accel/table1.hpp"
#include "mesh/cubed_sphere.hpp"

namespace {

struct ChainResult {
  sw::KernelStats stats;
  accel::PackedElems out;
};

struct ChainBench {
  homme::Dims d;
  accel::PackedElems base;
  accel::EulerAccConfig euler_cfg{};
  accel::EulerDerived derived;
  accel::HypervisAccConfig hv_cfg{};

  ChainBench(int nelem, int nlev, int qsize) {
    d.nlev = nlev;
    d.qsize = qsize;
    auto m = mesh::CubedSphere::build(2, mesh::kEarthRadius);
    base = accel::PackedElems::synthetic(m, d, nelem);
    derived = accel::EulerDerived::make(base, euler_cfg.shared_extra);
  }

  ChainResult run(bool fused) const {
    ChainResult r{.stats = {}, .out = base};
    accel::EulerKernel euler(r.out, derived, euler_cfg);
    accel::HypervisKernel dp2(r.out, accel::HvKernel::kDp2, hv_cfg);
    accel::HypervisKernel dp3d(r.out, accel::HvKernel::kBiharmDp3d, hv_cfg);
    accel::RemapKernel remap(r.out);
    const std::vector<const accel::Kernel*> chain{&euler, &dp2, &dp3d,
                                                  &remap};
    if (fused) {
      sw::CoreGroup cg;
      r.stats = accel::KernelPipeline(chain).run(cg);
    } else {
      for (const accel::Kernel* k : chain) {
        sw::CoreGroup cg;  // fresh group: no residency carries over
        const auto s = accel::KernelPipeline({k}).run(cg);
        r.stats.cycles += s.cycles;
        r.stats.seconds += s.seconds;
        r.stats.totals += s.totals;
      }
    }
    return r;
  }
};

void print_ablation() {
  std::printf("\n=== Ablation: fused kernel pipeline vs isolated launches "
              "(euler -> hypervis_dp2 -> biharmonic_dp3d -> remap) ===\n");
  std::printf("%-22s %13s %13s %12s %9s %10s\n", "shape (ne,nlev,q)",
              "isolated MB", "fused MB", "fused/iso", "reuse", "ldm peak");
  bool ok = true;
  for (auto [nelem, nlev, qsize] :
       {std::tuple{8, 32, 6}, std::tuple{16, 64, 8}, std::tuple{16, 64, 25}}) {
    ChainBench cb(nelem, nlev, qsize);
    const auto iso = cb.run(/*fused=*/false);
    const auto fus = cb.run(/*fused=*/true);

    const double diff = accel::packed_max_rel_diff(iso.out, fus.out);
    const auto iso_b = iso.stats.totals.total_dma_bytes();
    const auto fus_b = fus.stats.totals.total_dma_bytes();
    char shape[32];
    std::snprintf(shape, sizeof shape, "(%d,%d,%d)", nelem, nlev, qsize);
    std::printf("%-22s %13.3f %13.3f %11.1f%% %8.1f%% %9zu\n", shape,
                iso_b / 1e6, fus_b / 1e6,
                100.0 * static_cast<double>(fus_b) /
                    static_cast<double>(iso_b),
                100.0 * fus.stats.reuse_fraction(),
                static_cast<std::size_t>(fus.stats.totals.ldm_peak_bytes));

    if (diff != 0.0) {
      std::fprintf(stderr, "FAIL %s: fused chain diverges from isolated "
                           "(max rel diff %.3e)\n", shape, diff);
      ok = false;
    }
    if (fus_b >= iso_b || fus.stats.totals.dma_reused_bytes == 0) {
      std::fprintf(stderr, "FAIL %s: fused chain must move strictly fewer "
                           "bytes (isolated %llu, fused %llu, reused %llu)\n",
                   shape, static_cast<unsigned long long>(iso_b),
                   static_cast<unsigned long long>(fus_b),
                   static_cast<unsigned long long>(
                       fus.stats.totals.dma_reused_bytes));
      ok = false;
    }
  }
  std::printf("paper (section 7.3): cross-loop LDM residency cuts the "
              "Athread port's transfer volume; fused results bit-identical "
              "to isolated launches\n\n");
  if (!ok) std::exit(1);
}

void BM_Chain(benchmark::State& state) {
  const bool fused = state.range(0) == 1;
  ChainBench cb(16, 64, 8);
  double mb = 0.0;
  for (auto _ : state) {
    const auto r = cb.run(fused);
    state.SetIterationTime(r.stats.seconds);
    mb = r.stats.totals.total_dma_bytes() / 1e6;
  }
  state.counters["dma_MB"] = mb;
}
BENCHMARK(BM_Chain)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("fused")
    ->UseManualTime()
    ->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  // Accept the shared bench flags uniformly; nothing here is
  // size-dependent yet, but the flags must not reach gbench.
  (void)bench::BenchOptions::parse(argc, argv);
  print_ablation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
