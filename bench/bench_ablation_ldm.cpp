// Ablation for the section 7.3 claim: "total data transfer size has been
// decreased to 10% compared with the OpenACC solution". Sweeps the number
// of shared (non-tracer) fields the euler_step kernel touches: the more
// arrays the OpenACC collapse re-reads per tracer, the larger the
// Athread LDM-reuse win. CAM5's real euler_step shares ~15 field-sized
// arrays across ~25 tracers, which lands at the paper's ~10%.

#include <benchmark/benchmark.h>

#include "bench_common.hpp"

#include <cstdio>

#include "accel/euler_acc.hpp"
#include "mesh/cubed_sphere.hpp"

namespace {

void print_sweep() {
  homme::Dims d;
  d.nlev = 64;
  d.qsize = 25;
  auto m = mesh::CubedSphere::build(2, mesh::kEarthRadius);
  sw::CoreGroup cg;

  std::printf("\n=== Ablation (section 7.3): euler_step DMA traffic, Athread "
              "vs OpenACC, 25 tracers ===\n");
  std::printf("%-14s %14s %14s %12s\n", "shared fields", "openacc MB",
              "athread MB", "ath/acc");
  for (int shared : {0, 2, 4, 8, 12, 16}) {
    accel::EulerAccConfig cfg;
    cfg.shared_extra = shared;
    auto base = accel::PackedElems::synthetic(m, d, 8);
    auto derived = accel::EulerDerived::make(base, cfg.shared_extra);
    auto p1 = base;
    auto acc = accel::euler_openacc(cg, p1, derived, cfg);
    auto p2 = base;
    auto ath = accel::euler_athread(cg, p2, derived, cfg);
    std::printf("%-14d %14.2f %14.2f %11.1f%%\n", 3 + shared,
                acc.totals.total_dma_bytes() / 1e6,
                ath.totals.total_dma_bytes() / 1e6,
                100.0 * static_cast<double>(ath.totals.total_dma_bytes()) /
                    static_cast<double>(acc.totals.total_dma_bytes()));
  }
  std::printf("paper: traffic reduced to ~10%% with CAM's full shared-array "
              "set\n\n");
}

void BM_EulerTraffic(benchmark::State& state) {
  homme::Dims d;
  d.nlev = 32;
  d.qsize = 8;
  auto m = mesh::CubedSphere::build(2, mesh::kEarthRadius);
  auto base = accel::PackedElems::synthetic(m, d, 8);
  accel::EulerAccConfig cfg;
  auto derived = accel::EulerDerived::make(base, cfg.shared_extra);
  sw::CoreGroup cg;
  const bool athread = state.range(0) == 1;
  for (auto _ : state) {
    auto p = base;
    auto stats = athread ? accel::euler_athread(cg, p, derived, cfg)
                         : accel::euler_openacc(cg, p, derived, cfg);
    state.SetIterationTime(stats.seconds);
    state.counters["dma_MB"] =
        static_cast<double>(stats.totals.total_dma_bytes()) / 1e6;
  }
}
BENCHMARK(BM_EulerTraffic)->Arg(0)->Arg(1)->UseManualTime()->Iterations(3);

}  // namespace

int main(int argc, char** argv) {
  // Accept the shared bench flags uniformly; nothing here is
  // size-dependent yet, but the flags must not reach gbench.
  (void)bench::BenchOptions::parse(argc, argv);
  print_sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
