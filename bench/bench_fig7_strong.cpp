// Reproduces Figure 7: strong scalability of the redesigned HOMME for
// ne256 (393,216 elements) and ne1024 (6,291,456 elements) from 4,096 /
// 8,192 processes up to 131,072 (266,240 to 8,519,680 cores).

// Pass --json <path> for a machine-readable record of every plotted point.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "obs/report.hpp"
#include "perf/machine_model.hpp"

namespace {

const perf::MachineModel& model() {
  static const auto m = perf::MachineModel::calibrate(128, 25, 32);
  return m;
}

bool write_json(const std::string& path) {
  const auto& m = model();
  obs::Report rep("fig7_strong");
  rep.config().set("nlev", 128).set("qsize", 25).set("version", "athread");
  obs::Json& records = rep.root().arr("records");
  for (auto [ne, base] : {std::pair{256, 4096LL}, std::pair{1024, 8192LL}}) {
    for (long long p = base; p <= 131072; p *= 2) {
      const auto s = m.dycore_step(ne, p, perf::Version::kAthread);
      records.push()
          .set("ne", ne)
          .set("procs", static_cast<std::int64_t>(p))
          .set("step_s", s.total_s)
          .set("pflops", s.pflops)
          .set("parallel_efficiency",
               m.parallel_efficiency(ne, base, p, perf::Version::kAthread));
    }
  }
  return rep.write(path);
}

void print_figure() {
  const auto& m = model();
  std::printf("\n=== Figure 7: HOMME strong scaling (athread redesign) ===\n");
  std::printf("%-8s %10s %12s %14s %12s\n", "case", "procs", "PFlops",
              "ideal-PFlops", "par.eff");
  for (auto [ne, base] : {std::pair{256, 4096LL}, std::pair{1024, 8192LL}}) {
    const auto s0 = m.dycore_step(ne, base, perf::Version::kAthread);
    for (long long p = base; p <= 131072; p *= 2) {
      const auto s = m.dycore_step(ne, p, perf::Version::kAthread);
      const double ideal = s0.pflops * static_cast<double>(p) /
                           static_cast<double>(base);
      std::printf("ne%-6d %10lld %12.3f %14.3f %11.1f%%\n", ne, p, s.pflops,
                  ideal,
                  100.0 * m.parallel_efficiency(ne, base, p,
                                                perf::Version::kAthread));
    }
  }
  std::printf(
      "paper: ne256 0.07 -> 0.64 PFlops (21.7%% eff at 131072); ne1024 0.18 "
      "-> 1.76 PFlops (51%% eff)\n\n");
}

void register_benchmarks() {
  const auto& m = model();
  for (auto [ne, p] : {std::pair{256, 131072LL}, std::pair{1024, 131072LL}}) {
    const auto s = m.dycore_step(ne, p, perf::Version::kAthread);
    auto* b = benchmark::RegisterBenchmark(
        ("strong/ne" + std::to_string(ne) + "/procs:" + std::to_string(p))
            .c_str(),
        [s](benchmark::State& state) {
          for (auto _ : state) state.SetIterationTime(s.total_s);
          state.counters["PFlops"] = s.pflops;
        });
    b->UseManualTime()->Iterations(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const obs::CliOptions cli = obs::extract_cli(argc, argv);
  print_figure();
  if (!cli.json_path.empty() && !write_json(cli.json_path)) return 1;
  register_benchmarks();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
