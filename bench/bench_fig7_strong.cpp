// Reproduces Figure 7: strong scalability of the redesigned HOMME for
// ne256 (393,216 elements) and ne1024 (6,291,456 elements) from 4,096 /
// 8,192 processes up to 262,144 (266,240 to 17,039,360 cores — the
// projection extends one doubling past the paper's 131,072-process
// measurement, past 10M simulated cores).
//
// The analytic curve consumes the *measured* multi-core-group contention
// of the simulator (perf::MachineModel::calibrate runs every kernel with
// --core-groups sibling DMA streams declared on one shared memory
// controller), not an assumed intra-node figure.
//
// A measured section strong-scales a real model::Session over the
// threaded mini-MPI (nranks 1/2/4 on one fixed mesh) alongside the
// analytic machine-scale figure.

// Pass --json <path> for a machine-readable record of every plotted point.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "model/session.hpp"
#include "obs/report.hpp"
#include "perf/machine_model.hpp"

namespace {

// Core groups per processor used for calibration; set once from
// --core-groups in main() before the first model() call.
int g_core_groups = 4;

const perf::MachineModel& model() {
  static const auto m = perf::MachineModel::calibrate(128, 25, 32,
                                                      g_core_groups);
  return m;
}

// One MPI process drives one core group: 1 MPE + 64 CPEs = 65 cores, the
// paper's accounting (131,072 processes = 8,519,680 cores).
constexpr long long kCoresPerProcess = 65;

struct MeasuredPoint {
  int nranks = 0;
  double wall_s = 0.0;
  double step_s = 0.0;
  double speedup = 0.0;
  double efficiency = 0.0;
};

/// Wall time of \p steps Session steps at each rank count on one mesh.
std::vector<MeasuredPoint> measure_strong(int ne, int steps) {
  std::vector<MeasuredPoint> out;
  for (int nranks : {1, 2, 4}) {
    model::Session session(
        model::SessionConfig{}.with_ne(ne).with_levels(8, 2).with_ranks(
            nranks));
    session.step();  // warm
    const auto t0 = std::chrono::steady_clock::now();
    session.run(steps);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    MeasuredPoint pt;
    pt.nranks = nranks;
    pt.wall_s = wall;
    pt.step_s = wall / steps;
    pt.speedup = out.empty() ? 1.0 : out.front().wall_s / wall;
    pt.efficiency = pt.speedup / nranks;
    out.push_back(pt);
  }
  return out;
}

bool write_json(const std::string& path, int measured_ne,
                const std::vector<MeasuredPoint>& measured) {
  const auto& m = model();
  obs::Report rep("fig7_strong");
  rep.config().set("nlev", 128).set("qsize", 25).set("version", "athread");
  rep.root()
      .set("contention_model", "measured")
      .set("active_cgs", m.active_cgs)
      .set("contention_slowdown", m.contention_slowdown);
  obs::Json& curve = rep.root().arr("contention_curve");
  for (const auto& pt : m.contention) {
    curve.push()
        .set("active_cgs", pt.active_cgs)
        .set("slowdown", pt.slowdown)
        .set("per_cg_gbytes_s", pt.per_cg_gbytes_s);
  }
  long long max_cores = 0;
  obs::Json& records = rep.root().arr("records");
  for (auto [ne, base] : {std::pair{256, 4096LL}, std::pair{1024, 8192LL}}) {
    for (long long p = base; p <= 262144; p *= 2) {
      const auto s = m.dycore_step(ne, p, perf::Version::kAthread);
      const long long cores = p * kCoresPerProcess;
      if (cores > max_cores) max_cores = cores;
      records.push()
          .set("ne", ne)
          .set("procs", static_cast<std::int64_t>(p))
          .set("cores", static_cast<std::int64_t>(cores))
          .set("step_s", s.total_s)
          .set("pflops", s.pflops)
          .set("parallel_efficiency",
               m.parallel_efficiency(ne, base, p, perf::Version::kAthread));
    }
  }
  rep.root().set("max_cores", static_cast<std::int64_t>(max_cores));
  obs::Json& meas = rep.root().arr("measured");
  for (const auto& pt : measured) {
    meas.push()
        .set("ne", measured_ne)
        .set("nranks", pt.nranks)
        .set("wall_s", pt.wall_s)
        .set("step_s", pt.step_s)
        .set("speedup", pt.speedup)
        .set("parallel_efficiency", pt.efficiency);
  }
  return rep.write(path);
}

void print_measured(int ne, const std::vector<MeasuredPoint>& measured) {
  std::printf("=== Measured: model::Session strong scaling (ne%d, threaded "
              "mini-MPI) ===\n",
              ne);
  std::printf("%8s %10s %10s %10s %10s\n", "nranks", "wall s", "step s",
              "speedup", "par.eff");
  for (const auto& pt : measured)
    std::printf("%8d %10.3f %10.4f %9.2fx %9.1f%%\n", pt.nranks, pt.wall_s,
                pt.step_s, pt.speedup, 100.0 * pt.efficiency);
  std::printf("\n");
}

void print_figure() {
  const auto& m = model();
  std::printf("\n=== Figure 7: HOMME strong scaling (athread redesign) ===\n");
  std::printf("contention: measured on %d core groups, slowdown %.3fx "
              "(per-CG curve:",
              m.active_cgs, m.contention_slowdown);
  for (const auto& pt : m.contention)
    std::printf(" %d:%.1fGB/s", pt.active_cgs, pt.per_cg_gbytes_s);
  std::printf(")\n");
  std::printf("%-8s %10s %12s %10s %12s %14s %12s\n", "case", "procs", "cores",
              "Mcores", "PFlops", "ideal-PFlops", "par.eff");
  for (auto [ne, base] : {std::pair{256, 4096LL}, std::pair{1024, 8192LL}}) {
    const auto s0 = m.dycore_step(ne, base, perf::Version::kAthread);
    for (long long p = base; p <= 262144; p *= 2) {
      const auto s = m.dycore_step(ne, p, perf::Version::kAthread);
      const double ideal = s0.pflops * static_cast<double>(p) /
                           static_cast<double>(base);
      const long long cores = p * kCoresPerProcess;
      std::printf("ne%-6d %10lld %12lld %10.2f %12.3f %14.3f %11.1f%%\n", ne,
                  p, cores, static_cast<double>(cores) / 1.0e6, s.pflops,
                  ideal,
                  100.0 * m.parallel_efficiency(ne, base, p,
                                                perf::Version::kAthread));
    }
  }
  std::printf(
      "paper: ne256 0.07 -> 0.64 PFlops (21.7%% eff at 131072); ne1024 0.18 "
      "-> 1.76 PFlops (51%% eff); top row projects past 10M cores\n\n");
}

void register_benchmarks() {
  const auto& m = model();
  for (auto [ne, p] : {std::pair{256, 131072LL}, std::pair{1024, 131072LL}}) {
    const auto s = m.dycore_step(ne, p, perf::Version::kAthread);
    auto* b = benchmark::RegisterBenchmark(
        ("strong/ne" + std::to_string(ne) + "/procs:" + std::to_string(p))
            .c_str(),
        [s](benchmark::State& state) {
          for (auto _ : state) state.SetIterationTime(s.total_s);
          state.counters["PFlops"] = s.pflops;
        });
    b->UseManualTime()->Iterations(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opts = bench::BenchOptions::parse(argc, argv);
  g_core_groups = opts.core_groups_or(4);
  print_figure();
  const int ne = opts.ne_or(4);
  const std::vector<MeasuredPoint> measured =
      measure_strong(ne, opts.steps_or(opts.small ? 2 : 6));
  print_measured(ne, measured);
  if (!opts.json_path.empty() && !write_json(opts.json_path, ne, measured))
    return 1;
  register_benchmarks();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
