// Reproduces Figure 4: the climatological surface-temperature
// validation. Control run vs test run (perturbed at the measured
// cross-platform floating-point reassociation magnitude): the two
// climatologies must be statistically identical.
//
// Both runs are members of the "fig4-validation" scenario (member 0
// control, member 1 perturbed) driven through model::Session; pass
// --scenario to point the harness at another validation-kind workload.

#include <benchmark/benchmark.h>

#include "bench_common.hpp"

#include <cstdio>

#include "scenario/experiments.hpp"

namespace {

void print_figure(const bench::BenchOptions& opts) {
  const scenario::Scenario& sc =
      scenario::get(opts.scenario_or("fig4-validation"));
  scenario::ClimatologyConfig cfg;
  cfg.ne = opts.ne_or(sc.defaults.ne);
  cfg.nlev = sc.defaults.nlev;
  cfg.steps = opts.steps_or(static_cast<int>(sc.param("steps", 80.0)));
  cfg.spinup = static_cast<int>(sc.param("spinup", 20.0));
  cfg.perturbation = sc.param("perturb", 1e-9);
  if (opts.small) {
    cfg.ne = 2;
    cfg.nlev = 6;
    cfg.steps = 20;
    cfg.spinup = 5;
  }
  const auto stats = scenario::climatology_compare(cfg);
  std::printf("\n=== Figure 4: climatological surface temperature, control "
              "(reference order) vs test (Sunway-port order) ===\n");
  std::printf("mean surface T  control: %9.4f K   test: %9.4f K\n",
              stats.mean_control, stats.mean_test);
  std::printf("RMSE:                %.3e K\n", stats.rmse);
  std::printf("max |diff|:          %.3e K\n", stats.max_abs_diff);
  std::printf("pattern correlation: %.6f\n", stats.pattern_correlation);
  std::printf("paper: \"almost identical patterns\" on the two "
              "architectures\n\n");
}

void BM_ClimatologyRun(benchmark::State& state) {
  scenario::ClimatologyConfig cfg;
  cfg.ne = 2;
  cfg.nlev = 6;
  cfg.steps = 20;
  cfg.spinup = 5;
  for (auto _ : state) {
    auto stats = scenario::climatology_compare(cfg);
    benchmark::DoNotOptimize(stats.rmse);
  }
}
BENCHMARK(BM_ClimatologyRun)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opts = bench::BenchOptions::parse(argc, argv);
  print_figure(opts);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
