// Reproduces Figure 4: the climatological surface-temperature
// validation. Control run vs test run (perturbed at the measured
// cross-platform floating-point reassociation magnitude): the two
// climatologies must be statistically identical.

#include <benchmark/benchmark.h>

#include "bench_common.hpp"

#include <cstdio>

#include "validation/climatology.hpp"

namespace {

void print_figure() {
  validation::ClimatologyConfig cfg;
  cfg.ne = 4;
  cfg.nlev = 8;
  cfg.steps = 80;
  cfg.spinup = 20;
  const auto stats = validation::climatology_compare(cfg);
  std::printf("\n=== Figure 4: climatological surface temperature, control "
              "(reference order) vs test (Sunway-port order) ===\n");
  std::printf("mean surface T  control: %9.4f K   test: %9.4f K\n",
              stats.mean_control, stats.mean_test);
  std::printf("RMSE:                %.3e K\n", stats.rmse);
  std::printf("max |diff|:          %.3e K\n", stats.max_abs_diff);
  std::printf("pattern correlation: %.6f\n", stats.pattern_correlation);
  std::printf("paper: \"almost identical patterns\" on the two "
              "architectures\n\n");
}

void BM_ClimatologyRun(benchmark::State& state) {
  validation::ClimatologyConfig cfg;
  cfg.ne = 2;
  cfg.nlev = 6;
  cfg.steps = 20;
  cfg.spinup = 5;
  for (auto _ : state) {
    auto stats = validation::climatology_compare(cfg);
    benchmark::DoNotOptimize(stats.rmse);
  }
}
BENCHMARK(BM_ClimatologyRun)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // Accept the shared bench flags uniformly; nothing here is
  // size-dependent yet, but the flags must not reach gbench.
  (void)bench::BenchOptions::parse(argc, argv);
  print_figure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
