#pragma once

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "obs/report.hpp"
#include "scenario/registry.hpp"

/// \file bench_common.hpp
/// The one bench CLI parser. Every bench used to hand-roll (or skip) the
/// same flag extraction; BenchOptions::parse pulls the shared flags out
/// of argc/argv — before google-benchmark sees the rest — in one place:
///   --json <path>    machine-readable obs::Report
///   --trace <path>   Chrome trace-event timeline
///   --small          reduced problem size (CI smoke)
///   --steps <n>      override the bench's step count
///   --ne <n>         override the bench's mesh resolution
///   --workers <n>    engine worker-pool size (ensemble benches)
///   --members <n>    ensemble member count
///   --latency-us <n> modeled per-step coupler/ingest stall, microseconds
///   --ckpt-interval <k> full checkpoint image every k saves (deltas between)
///   --core-groups <n> core groups per processor/pool. Every bench accepts
///                    it uniformly; it only affects pipeline-backend runs —
///                    host-backend (and analytic) benches parse and ignore
///                    it, so one CI matrix drives all binaries.
///   --scenario <name> run the named scenario:: registry workload
///                    (strict: an unknown name exits 2 with the known list)
///   --list-scenarios  print the registered workload table and exit 0
///
/// Parsing is strict: every value is read with strtol and must be a
/// complete decimal integer within [min, 1e9] — a missing, non-numeric,
/// trailing-junk or below-minimum value aborts with a message on stderr
/// (exit 2). String flags are validated the same way (--scenario must
/// name a registered workload). The unset sentinel is -1 everywhere, and
/// every _or accessor tests `>= 0`, so an explicit "--steps 0" really
/// means zero steps rather than "use the default".

namespace bench {

struct BenchOptions {
  std::string json_path;   ///< --json
  std::string trace_path;  ///< --trace
  bool small = false;      ///< --small
  int steps = -1;          ///< --steps; -1 = bench default
  int ne = -1;             ///< --ne; -1 = bench default
  int workers = -1;        ///< --workers; -1 = bench default
  int members = -1;        ///< --members; -1 = bench default
  int latency_us = -1;     ///< --latency-us; -1 = bench default
  int ckpt_interval = -1;  ///< --ckpt-interval; -1 = bench default
  int core_groups = -1;    ///< --core-groups; -1 = bench default
  std::string scenario;    ///< --scenario; empty = bench default

  int steps_or(int fallback) const { return steps >= 0 ? steps : fallback; }
  int ne_or(int fallback) const { return ne >= 0 ? ne : fallback; }
  int workers_or(int fallback) const {
    return workers >= 0 ? workers : fallback;
  }
  int members_or(int fallback) const {
    return members >= 0 ? members : fallback;
  }
  int latency_us_or(int fallback) const {
    return latency_us >= 0 ? latency_us : fallback;
  }
  int ckpt_interval_or(int fallback) const {
    return ckpt_interval >= 0 ? ckpt_interval : fallback;
  }
  int core_groups_or(int fallback) const {
    return core_groups >= 0 ? core_groups : fallback;
  }
  std::string scenario_or(const char* fallback) const {
    return scenario.empty() ? fallback : scenario;
  }

  /// The shared flags, one line each — printed on --list-scenarios
  /// misuse and kept in sync with the doc comment above.
  static const char* usage() {
    return
        "shared bench flags:\n"
        "  --json <path>       machine-readable obs::Report\n"
        "  --trace <path>      Chrome trace-event timeline\n"
        "  --small             reduced problem size (CI smoke)\n"
        "  --steps <n>         override the bench's step count\n"
        "  --ne <n>            override the bench's mesh resolution\n"
        "  --workers <n>       engine worker-pool size (ensemble benches)\n"
        "  --members <n>       ensemble member count\n"
        "  --latency-us <n>    modeled per-step coupler stall, microseconds\n"
        "  --ckpt-interval <k> full checkpoint every k saves\n"
        "  --core-groups <n>   core groups per processor/pool; accepted by\n"
        "                      every bench, only affects pipeline-backend\n"
        "                      runs (host-backend benches parse + ignore)\n"
        "  --scenario <name>   run the named scenario:: registry workload\n"
        "  --list-scenarios    print the registered workloads and exit\n";
  }

  /// Print the registry as a table (what --list-scenarios shows).
  static void print_scenarios(std::FILE* out) {
    std::fprintf(out, "%-22s %-11s %s\n", "name", "kind", "title");
    for (const auto& name : scenario::names()) {
      const scenario::Scenario& sc = scenario::get(name);
      std::fprintf(out, "%-22s %-11s %s\n", sc.name.c_str(), sc.kind.c_str(),
                   sc.title.c_str());
    }
  }

  /// Extract (and remove) the shared flags so benchmark::Initialize only
  /// sees what it understands.
  static BenchOptions parse(int& argc, char** argv) {
    BenchOptions opts;
    const obs::CliOptions cli = obs::extract_cli(argc, argv);
    opts.json_path = cli.json_path;
    opts.trace_path = cli.trace_path;
    opts.small = cli.small;

    auto die = [](const char* flag, const char* what, const char* got) {
      std::fprintf(stderr, "bench: %s %s (got \"%s\")\n%s", flag, what, got,
                   usage());
      std::exit(2);
    };
    auto drop = [&](int i, int n) {
      for (int j = i; j + n < argc; ++j) argv[j] = argv[j + n];
      argc -= n;
    };
    auto take_int = [&](const char* flag, int& out, long min_value) {
      for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], flag) != 0) continue;
        if (i + 1 >= argc) die(flag, "requires a value", "");
        const char* text = argv[i + 1];
        errno = 0;
        char* end = nullptr;
        const long v = std::strtol(text, &end, 10);
        if (end == text || *end != '\0') {
          die(flag, "expects an integer", text);
        }
        if (errno == ERANGE || v < min_value || v > 1000000000L) {
          die(flag, "value out of range", text);
        }
        out = static_cast<int>(v);
        drop(i, 2);
        return;
      }
    };
    take_int("--steps", opts.steps, 0);
    take_int("--ne", opts.ne, 1);
    take_int("--workers", opts.workers, 1);
    take_int("--members", opts.members, 1);
    take_int("--latency-us", opts.latency_us, 0);
    take_int("--ckpt-interval", opts.ckpt_interval, 1);
    take_int("--core-groups", opts.core_groups, 1);

    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--list-scenarios") != 0) continue;
      print_scenarios(stdout);
      std::exit(0);
    }
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--scenario") != 0) continue;
      if (i + 1 >= argc) die("--scenario", "requires a value", "");
      const char* name = argv[i + 1];
      if (scenario::find(name) == nullptr) {
        std::string known;
        for (const auto& n : scenario::names()) {
          known += known.empty() ? n : ", " + n;
        }
        std::fprintf(stderr, "bench: --scenario names an unknown workload "
                             "(got \"%s\"; known: %s)\n%s",
                     name, known.c_str(), usage());
        std::exit(2);
      }
      opts.scenario = name;
      drop(i, 2);
      break;
    }
    return opts;
  }
};

}  // namespace bench
