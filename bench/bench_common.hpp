#pragma once

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "obs/report.hpp"

/// \file bench_common.hpp
/// The one bench CLI parser. Every bench used to hand-roll (or skip) the
/// same flag extraction; BenchOptions::parse pulls the shared flags out
/// of argc/argv — before google-benchmark sees the rest — in one place:
///   --json <path>    machine-readable obs::Report
///   --trace <path>   Chrome trace-event timeline
///   --small          reduced problem size (CI smoke)
///   --steps <n>      override the bench's step count
///   --ne <n>         override the bench's mesh resolution
///   --workers <n>    engine worker-pool size (ensemble benches)
///   --members <n>    ensemble member count
///   --latency-us <n> modeled per-step coupler/ingest stall, microseconds
///   --ckpt-interval <k> full checkpoint image every k saves (deltas between)
///   --core-groups <n> core groups per processor/pool (multi-CG benches)
///
/// Parsing is strict: every value is read with strtol and must be a
/// complete decimal integer within [min, 1e9] — a missing, non-numeric,
/// trailing-junk or below-minimum value aborts with a message on stderr
/// (exit 2). The unset sentinel is -1 everywhere, and every _or accessor
/// tests `>= 0`, so an explicit "--steps 0" really means zero steps
/// rather than "use the default".

namespace bench {

struct BenchOptions {
  std::string json_path;   ///< --json
  std::string trace_path;  ///< --trace
  bool small = false;      ///< --small
  int steps = -1;          ///< --steps; -1 = bench default
  int ne = -1;             ///< --ne; -1 = bench default
  int workers = -1;        ///< --workers; -1 = bench default
  int members = -1;        ///< --members; -1 = bench default
  int latency_us = -1;     ///< --latency-us; -1 = bench default
  int ckpt_interval = -1;  ///< --ckpt-interval; -1 = bench default
  int core_groups = -1;    ///< --core-groups; -1 = bench default

  int steps_or(int fallback) const { return steps >= 0 ? steps : fallback; }
  int ne_or(int fallback) const { return ne >= 0 ? ne : fallback; }
  int workers_or(int fallback) const {
    return workers >= 0 ? workers : fallback;
  }
  int members_or(int fallback) const {
    return members >= 0 ? members : fallback;
  }
  int latency_us_or(int fallback) const {
    return latency_us >= 0 ? latency_us : fallback;
  }
  int ckpt_interval_or(int fallback) const {
    return ckpt_interval >= 0 ? ckpt_interval : fallback;
  }
  int core_groups_or(int fallback) const {
    return core_groups >= 0 ? core_groups : fallback;
  }

  /// Extract (and remove) the shared flags so benchmark::Initialize only
  /// sees what it understands.
  static BenchOptions parse(int& argc, char** argv) {
    BenchOptions opts;
    const obs::CliOptions cli = obs::extract_cli(argc, argv);
    opts.json_path = cli.json_path;
    opts.trace_path = cli.trace_path;
    opts.small = cli.small;

    auto die = [](const char* flag, const char* what, const char* got) {
      std::fprintf(stderr, "bench: %s %s (got \"%s\")\n", flag, what, got);
      std::exit(2);
    };
    auto take_int = [&](const char* flag, int& out, long min_value) {
      for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], flag) != 0) continue;
        if (i + 1 >= argc) die(flag, "requires a value", "");
        const char* text = argv[i + 1];
        errno = 0;
        char* end = nullptr;
        const long v = std::strtol(text, &end, 10);
        if (end == text || *end != '\0') {
          die(flag, "expects an integer", text);
        }
        if (errno == ERANGE || v < min_value || v > 1000000000L) {
          die(flag, "value out of range", text);
        }
        out = static_cast<int>(v);
        for (int j = i; j + 2 < argc; ++j) argv[j] = argv[j + 2];
        argc -= 2;
        return;
      }
    };
    take_int("--steps", opts.steps, 0);
    take_int("--ne", opts.ne, 1);
    take_int("--workers", opts.workers, 1);
    take_int("--members", opts.members, 1);
    take_int("--latency-us", opts.latency_us, 0);
    take_int("--ckpt-interval", opts.ckpt_interval, 1);
    take_int("--core-groups", opts.core_groups, 1);
    return opts;
  }
};

}  // namespace bench
