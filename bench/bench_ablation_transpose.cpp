// Ablation for section 7.5: the shuffle + register-communication array
// transposition. Compares three ways to switch the array axis of an
// element block on the simulated CPE cluster:
//   (1) strided per-column DMA gathers (one 8-byte block per level),
//   (2) contiguous DMA + in-LDM shuffle transpose,
//   (3) the distributed inter-CPE register-communication block transpose.

#include <benchmark/benchmark.h>

#include "bench_common.hpp"

#include <cstdio>
#include <vector>

#include "sw/core_group.hpp"
#include "sw/transpose.hpp"

namespace {

constexpr int kLev = 128;
constexpr int kNpp = 16;  // GLL points per element level

double strided_gather_seconds(sw::CoreGroup& cg, std::vector<double>& mem) {
  auto stats = cg.run([&](sw::Cpe& cpe) -> sw::Task {
    sw::LdmFrame frame(cpe.ldm());
    auto col = cpe.ldm().alloc<double>(kLev);
    for (int k = 0; k < kNpp; ++k) {
      cpe.dma_wait(cpe.dma_get_strided(
          col.data(), mem.data() + k, sizeof(double), kLev,
          kNpp * sizeof(double)));
      benchmark::DoNotOptimize(col[0]);
    }
    co_return;
  });
  return stats.seconds;
}

double shuffle_transpose_seconds(sw::CoreGroup& cg,
                                 std::vector<double>& mem) {
  auto stats = cg.run([&](sw::Cpe& cpe) -> sw::Task {
    sw::LdmFrame frame(cpe.ldm());
    auto raw = cpe.ldm().alloc<double>(kLev * kNpp);
    auto out = cpe.ldm().alloc<double>(kLev * kNpp);
    cpe.dma_wait(
        cpe.dma_get(raw.data(), mem.data(), raw.size() * sizeof(double)));
    sw::ldm_transpose(cpe, raw.data(), out.data(), kLev, kNpp);
    benchmark::DoNotOptimize(out[0]);
    co_return;
  });
  return stats.seconds;
}

double cpe_block_transpose_seconds(sw::CoreGroup& cg) {
  auto stats = cg.run([&](sw::Cpe& cpe) -> sw::Task {
    sw::LdmFrame frame(cpe.ldm());
    auto blocks = cpe.ldm().alloc<double>(8 * 16);
    for (std::size_t i = 0; i < blocks.size(); ++i) {
      blocks[i] = static_cast<double>(cpe.id()) + static_cast<double>(i);
    }
    co_await sw::cpe_block_transpose(cpe, blocks, 8);
    benchmark::DoNotOptimize(blocks[0]);
  });
  return stats.seconds;
}

void print_ablation() {
  sw::CoreGroup cg;
  std::vector<double> mem(kLev * kNpp, 1.0);
  const double strided = strided_gather_seconds(cg, mem);
  const double shuffled = shuffle_transpose_seconds(cg, mem);
  const double distributed = cpe_block_transpose_seconds(cg);
  std::printf("\n=== Ablation (section 7.5): axis switch of a [128][16] "
              "element block ===\n");
  std::printf("strided per-column DMA gathers:     %10.2f us (modeled)\n",
              strided * 1e6);
  std::printf("contiguous DMA + shuffle transpose: %10.2f us (modeled)\n",
              shuffled * 1e6);
  std::printf("  -> %.1fx faster\n", strided / shuffled);
  std::printf("inter-CPE register block transpose (64 CPEs, 8 tiles each): "
              "%.2f us\n\n",
              distributed * 1e6);
}

void BM_ShuffleTranspose(benchmark::State& state) {
  sw::CoreGroup cg;
  std::vector<double> mem(kLev * kNpp, 1.0);
  for (auto _ : state) {
    state.SetIterationTime(shuffle_transpose_seconds(cg, mem));
  }
}
BENCHMARK(BM_ShuffleTranspose)->UseManualTime()->Iterations(3);

void BM_StridedGather(benchmark::State& state) {
  sw::CoreGroup cg;
  std::vector<double> mem(kLev * kNpp, 1.0);
  for (auto _ : state) {
    state.SetIterationTime(strided_gather_seconds(cg, mem));
  }
}
BENCHMARK(BM_StridedGather)->UseManualTime()->Iterations(3);

}  // namespace

int main(int argc, char** argv) {
  // Accept the shared bench flags uniformly; nothing here is
  // size-dependent yet, but the flags must not reach gbench.
  (void)bench::BenchOptions::parse(argc, argv);
  print_ablation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
