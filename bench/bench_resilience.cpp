// Cost of the resilience layer: checkpoint serialize/deserialize and
// file round-trip wall time (and bytes) for one process's state, plus
// what a faulted accelerator launch costs once the host fallback redoes
// it, against the clean offload and plain host remap baselines.
//
// Unlike the kernel benches these are *measured* host-side wall times —
// checkpointing and fallback run on the MPE/host, not on the modeled CPE
// cluster. The simulation under test is a model::Session on the pipeline
// backend; the session's own tracer counts the fallback / fault events.
//
// Pass --json <path> to dump the numbers as machine-readable JSON (via
// obs::Report, including the per-phase obs:: summary with the counted
// accel:host_fallback / cg:fault events), --trace <path> for the Chrome
// trace-event timeline of the offloaded and faulted launches.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "homme/checkpoint.hpp"
#include "homme/remap.hpp"
#include "model/session.hpp"
#include "obs/report.hpp"
#include "sw/fault.hpp"

namespace {

struct Results {
  std::size_t checkpoint_bytes = 0;
  double serialize_s = 0.0;
  double deserialize_s = 0.0;
  double file_save_s = 0.0;
  double file_load_s = 0.0;
  double remap_host_s = 0.0;
  double remap_offload_s = 0.0;
  double remap_fallback_s = 0.0;
  /// Counted obs:: events from the faulted-launch phase: even though the
  /// runs succeed (the fallback redoes the work), every discarded launch
  /// surfaces as an accel:host_fallback instant in the summary.
  std::uint64_t fallback_events = 0;
  std::uint64_t fault_events = 0;
};

constexpr int kMeshNe = 2;
constexpr int kNlev = 32;
constexpr int kQsize = 4;
constexpr int kReps = 5;

/// The fault plan stays attached to the session for its whole life; it
/// injects nothing until the faulted-launch phase arms it.
sw::FaultPlan& fault_plan() {
  static sw::FaultPlan plan;
  return plan;
}

/// The simulation under test: one ne2 session on the pipeline backend
/// with a virtual-clock tracer (deterministic, no wall noise). Kept
/// alive for the --trace export at the end of main.
model::Session& session() {
  static model::Session s(
      model::SessionConfig{}
          .with_ne(kMeshNe)
          .with_levels(kNlev, kQsize)
          .with_backend(model::SessionConfig::Backend::kPipeline)
          .with_faults(&fault_plan())
          .with_trace(true, obs::ClockDomain::kVirtual));
  return s;
}

/// Best-of-kReps wall time of \p fn, seconds.
template <typename F>
double timed(F&& fn) {
  double best = 1e30;
  for (int i = 0; i < kReps; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

const Results& results() {
  static const Results r = [] {
    Results out;
    model::Session& sess = session();
    const homme::Dims d = sess.dims();
    const homme::State s = sess.state();

    homme::CheckpointInfo info;
    info.nelem = s.size();
    info.dims = d;
    info.step_count = 100;

    const auto image = homme::serialize_checkpoint(info, s);
    out.checkpoint_bytes = image.size();
    out.serialize_s =
        timed([&] { benchmark::DoNotOptimize(serialize_checkpoint(info, s)); });
    out.deserialize_s = timed([&] {
      homme::State restored;
      homme::deserialize_checkpoint(image, restored);
      benchmark::DoNotOptimize(restored);
    });

    const std::string path = "bench_resilience.ck";
    out.file_save_s =
        timed([&] { homme::save_checkpoint(path, info, s); });
    out.file_load_s = timed([&] {
      homme::State restored;
      homme::load_checkpoint(path, restored);
      benchmark::DoNotOptimize(restored);
    });
    std::remove(path.c_str());

    out.remap_host_s = timed([&] {
      homme::State w = s;
      homme::vertical_remap_local(d, w);
      benchmark::DoNotOptimize(w);
    });

    homme::StepAccelerator* pa = sess.accelerator();
    out.remap_offload_s = timed([&] {
      homme::State w = s;
      pa->vertical_remap(w);
      benchmark::DoNotOptimize(w);
    });

    // Faulted launch: the first DMA descriptor of any CPE fails, the
    // launch is discarded and the remap redone on the host. reset()
    // re-arms the one-shot spec between reps.
    fault_plan().inject({sw::FaultKind::kDmaFail, -1, 0});
    out.remap_fallback_s = timed([&] {
      fault_plan().reset();
      homme::State w = s;
      pa->vertical_remap(w);
      benchmark::DoNotOptimize(w);
    });
    if (sess.fallbacks() < kReps) {
      std::fprintf(stderr,
                   "bench_resilience: expected every faulted launch to fall "
                   "back (got %d of %d)\n",
                   sess.fallbacks(), kReps);
    }
    const obs::Summary sum = sess.summary();
    out.fallback_events = obs::phase_count(sum, "accel:host_fallback");
    out.fault_events = obs::phase_count(sum, "cg:fault");
    return out;
  }();
  return r;
}

void print_table() {
  const Results& r = results();
  std::printf("\n=== Resilience costs (ne=%d mesh, %d levels, %d tracers) "
              "===\n",
              kMeshNe, kNlev, kQsize);
  std::printf("checkpoint image:      %zu bytes\n", r.checkpoint_bytes);
  std::printf("serialize:             %.3e s  (%.1f MB/s)\n", r.serialize_s,
              r.checkpoint_bytes / r.serialize_s / 1e6);
  std::printf("deserialize+CRC:       %.3e s\n", r.deserialize_s);
  std::printf("file save:             %.3e s\n", r.file_save_s);
  std::printf("file load:             %.3e s\n", r.file_load_s);
  std::printf("vertical remap host:   %.3e s\n", r.remap_host_s);
  std::printf("vertical remap accel:  %.3e s (simulator wall time)\n",
              r.remap_offload_s);
  std::printf("faulted launch + host fallback: %.3e s (%.2fx host remap)\n",
              r.remap_fallback_s, r.remap_fallback_s / r.remap_host_s);
  std::printf("counted events: %llu host fallbacks, %llu core-group faults "
              "(runs succeeded anyway)\n\n",
              static_cast<unsigned long long>(r.fallback_events),
              static_cast<unsigned long long>(r.fault_events));
}

bool write_json(const std::string& path) {
  const Results& r = results();
  obs::Report rep("resilience");
  rep.config()
      .set("mesh_ne", kMeshNe)
      .set("nlev", kNlev)
      .set("qsize", kQsize);
  rep.root()
      .set("checkpoint_bytes", static_cast<std::uint64_t>(r.checkpoint_bytes))
      .set("serialize_s", r.serialize_s)
      .set("deserialize_s", r.deserialize_s)
      .set("file_save_s", r.file_save_s)
      .set("file_load_s", r.file_load_s)
      .set("remap_host_s", r.remap_host_s)
      .set("remap_offload_s", r.remap_offload_s)
      .set("remap_fallback_s", r.remap_fallback_s)
      .set("host_fallback_events", r.fallback_events)
      .set("core_group_fault_events", r.fault_events);
  rep.add_summary(session().summary());
  return rep.write(path);
}

void register_benchmarks() {
  const Results& r = results();
  for (auto [name, secs] :
       {std::pair{"checkpoint/serialize", r.serialize_s},
        std::pair{"checkpoint/deserialize", r.deserialize_s},
        std::pair{"checkpoint/file_save", r.file_save_s},
        std::pair{"checkpoint/file_load", r.file_load_s},
        std::pair{"remap/host", r.remap_host_s},
        std::pair{"remap/offload", r.remap_offload_s},
        std::pair{"remap/fault_fallback", r.remap_fallback_s}}) {
    auto* b = benchmark::RegisterBenchmark(
        name, [secs](benchmark::State& state) {
          for (auto _ : state) {
            state.SetIterationTime(secs);
          }
        });
    b->UseManualTime()->Iterations(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opts = bench::BenchOptions::parse(argc, argv);
  print_table();
  if (!opts.json_path.empty() && !write_json(opts.json_path)) return 1;
  if (!opts.trace_path.empty() &&
      !session().tracer().write_chrome_trace(opts.trace_path)) {
    return 1;
  }
  register_benchmarks();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
