// Fault-injected soak of the hardened service front-end (svc::Server).
//
// The soak drives an always-on server the way a deployment would, and
// asserts the hardening contracts instead of just timing them — any
// violation prints a FAIL line and exits 1, so CI can gate on it:
//
//   waves        each wave submits a mix of member shapes: sequential
//                ne2 members (distinct remap cadences) and 2-rank
//                parallel members, half of which carry an active
//                sw::FaultPlan dropping a mini-MPI message mid-run.
//                The watchdog turns the drop into a deterministic
//                CommTimeout fault; the server retries on its recorded
//                backoff schedule (sleep_scale=0: virtual time — the
//                unscaled schedule is computed and recorded, retries
//                fire immediately) and must converge to the fault-free
//                digest.
//
//   drain/restart  the first two waves are interrupted mid-flight:
//                drain() cancels the running members at a checkpoint and
//                parks them, restart() resumes them on a fresh engine.
//                Every completed member — retried, resumed, or
//                undisturbed — must finish with a final-state CRC equal
//                to an uninterrupted fault-free reference run.
//
//   burst        a quota-limited tenant (max_active=4, soft_active=2)
//                submits 6 members back to back; the admission verdicts
//                must come out exactly Admitted x2, Throttled x2,
//                Rejected x2, deterministically.
//
//   leak check   at the end every member record is kDone, the engine
//                queue is empty, and every submitted attempt reached a
//                terminal state: submitted == completed + faulted +
//                cancelled + deadline across all drain cycles.
//
// After every drain and at settle points the bench captures a metrics
// snapshot (phase counts, tenant counters, folded engine stats) into the
// --json report's "snapshots" array, and checks the scrape-friendly
// flat rendering carries the keys a scraper would poll.
//
// Flags (bench_common.hpp): --json --trace --small --steps
//   --members N   sequential members per wave (default 3)

#include <benchmark/benchmark.h>

#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "obs/report.hpp"
#include "svc/server.hpp"
#include "sw/fault.hpp"

namespace {

struct SoakSpec {
  int waves = 3;
  int seq_per_wave = 3;  ///< sequential ne2 members per wave
  int par_per_wave = 2;  ///< 2-rank parallel members per wave
  int steps = 12;        ///< total step target per member
  int burst = 6;         ///< quota-burst submissions
  double stall_s = 0.003;  ///< per-step stall so drains land mid-run
};

int g_failures = 0;

void check(bool ok, const char* what) {
  if (ok) return;
  ++g_failures;
  std::fprintf(stderr, "soak FAIL: %s\n", what);
}

model::SessionConfig seq_config(const SoakSpec& spec, int i) {
  (void)spec;
  return model::SessionConfig{}.with_ne(2).with_levels(4, 1).with_remap_freq(
      1 + i % 3);
}

model::SessionConfig par_config() {
  return model::SessionConfig{}.with_ne(2).with_levels(4, 1).with_ranks(2);
}

/// Fault-free digest of \p cfg run to \p steps on a throwaway engine.
std::uint32_t reference_digest(const model::SessionConfig& cfg, int steps) {
  svc::Engine engine(svc::EngineConfig{});
  svc::RunRequest req;
  req.config = cfg;
  req.steps = steps;
  auto ticket = engine.submit(std::move(req));
  const svc::RunResult& res = ticket->wait();
  check(res.state == svc::RunState::kCompleted, "reference run completed");
  return res.state_crc;
}

/// One point-in-time metrics sample, taken from the server's public
/// accessors (the same numbers metrics() reports).
struct Snapshot {
  std::string label;
  int members_total = 0;
  int done = 0, active = 0, backoff = 0, parked = 0;
  std::uint64_t retries = 0, restarts = 0;
  svc::EngineStats engine;
  std::size_t flat_lines = 0;
  bool flat_has_keys = false;
};

Snapshot take_snapshot(const svc::Server& server, std::string label) {
  Snapshot s;
  s.label = std::move(label);
  for (const auto& m : server.members()) {
    ++s.members_total;
    switch (m.phase) {
      case svc::MemberPhase::kDone: ++s.done; break;
      case svc::MemberPhase::kActive: ++s.active; break;
      case svc::MemberPhase::kBackoff: ++s.backoff; break;
      case svc::MemberPhase::kParked: ++s.parked; break;
    }
  }
  s.retries = server.retries();
  s.restarts = server.restarts();
  s.engine = server.engine_stats();

  const std::string flat = server.metrics_flat();
  for (char c : flat) s.flat_lines += c == '\n' ? 1 : 0;
  s.flat_has_keys =
      flat.find("swcam.members.total ") != std::string::npos &&
      flat.find("swcam.engine.submitted ") != std::string::npos &&
      flat.find("swcam.retries ") != std::string::npos;
  check(s.flat_has_keys, "flat metrics carry the scrape keys");
  return s;
}

void wait_for_any_running(const std::vector<svc::RunTicket>& tickets) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  for (;;) {
    for (const auto& t : tickets) {
      if (t != nullptr && t->state() == svc::RunState::kRunning) return;
      if (t != nullptr && t->state() != svc::RunState::kQueued) return;
    }
    if (std::chrono::steady_clock::now() > deadline) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opts = bench::BenchOptions::parse(argc, argv);

  SoakSpec spec;
  spec.seq_per_wave = opts.members_or(spec.seq_per_wave);
  spec.steps = opts.steps_or(opts.small ? 10 : spec.steps);
  if (opts.small) spec.waves = 2;

  namespace fs = std::filesystem;
  const fs::path ckpt_dir =
      fs::temp_directory_path() / ("swcam_soak_" + std::to_string(::getpid()));
  fs::create_directories(ckpt_dir);

  // Fault-free reference digests per distinct config shape. Faults fire
  // at most once and retries resume from checkpoints, so every completed
  // soak member must land on one of these.
  std::map<std::string, std::uint32_t> want;
  for (int r = 0; r < 3; ++r) {
    want["seq" + std::to_string(r)] =
        reference_digest(seq_config(spec, r), spec.steps);
  }
  want["par"] = reference_digest(par_config(), spec.steps);

  svc::ServerConfig cfg;
  cfg.engine.workers = 2;
  cfg.engine.queue_capacity = 32;
  cfg.retry.max_attempts = 3;
  cfg.retry.sleep_scale = 0.0;  // virtual-time retry schedule
  cfg.checkpoint_dir = ckpt_dir.string();
  cfg.checkpoint_freq = 4;
  svc::Server server(cfg);
  server.add_tenant("ops", svc::TenantQuota{});

  // Every fault plan must outlive all retries of its member, including
  // retries resumed after a restart — keep them alive for the whole run.
  std::vector<std::unique_ptr<sw::FaultPlan>> plans;
  std::map<std::string, std::string> config_of;  // member -> digest key
  int faults_armed = 0;

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<Snapshot> snapshots;
  int drain_restart_cycles = 0;

  for (int w = 0; w < spec.waves; ++w) {
    std::vector<svc::RunTicket> wave_tickets;
    for (int i = 0; i < spec.seq_per_wave; ++i) {
      const std::string name =
          "w" + std::to_string(w) + "_s" + std::to_string(i);
      svc::RunRequest req;
      req.config = seq_config(spec, i);
      req.steps = spec.steps;
      req.step_stall_s = spec.stall_s;
      const auto out = server.submit("ops", name, std::move(req));
      check(out.admission == svc::Admission::kAdmitted,
            "unlimited tenant admits every wave member");
      if (out.ticket != nullptr) wave_tickets.push_back(out.ticket);
      config_of[name] = "seq" + std::to_string(i % 3);
    }
    for (int i = 0; i < spec.par_per_wave; ++i) {
      const std::string name =
          "w" + std::to_string(w) + "_p" + std::to_string(i);
      svc::RunRequest req;
      req.config = par_config();
      req.config.with_watchdog(0.2);
      if (i % 2 == 0) {
        // Drop rank 0's 4th send: the peer's watchdog fires, the member
        // faults deterministically, and the retry must complete clean.
        plans.push_back(std::make_unique<sw::FaultPlan>(1000 + w * 16 + i));
        plans.back()->inject(
            {sw::FaultKind::kMsgDrop, /*target=*/0, /*op_index=*/3});
        req.config.faults = plans.back().get();
        ++faults_armed;
      }
      req.steps = spec.steps;
      const auto out = server.submit("ops", name, std::move(req));
      check(out.admission == svc::Admission::kAdmitted,
            "unlimited tenant admits every wave member");
      if (out.ticket != nullptr) wave_tickets.push_back(out.ticket);
      config_of[name] = "par";
    }

    if (w < 2) {
      // Interrupt the wave mid-flight: drain parks the incomplete
      // members at a checkpoint, restart resumes them on a new engine.
      wait_for_any_running(wave_tickets);
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      server.drain();
      check(server.state() == svc::ServerState::kStopped,
            "drain leaves the server stopped");
      snapshots.push_back(
          take_snapshot(server, "drained_w" + std::to_string(w)));
      server.restart();
      check(server.state() == svc::ServerState::kAdmitting,
            "restart returns to admitting");
      ++drain_restart_cycles;
    }
    server.wait_idle();
    snapshots.push_back(take_snapshot(server, "settled_w" + std::to_string(w)));
  }

  // Quota burst: 6 submissions against max_active=4 / soft_active=2 must
  // produce exactly Admitted x2, Throttled x2, Rejected x2.
  svc::TenantQuota quota;
  quota.max_active = 4;
  quota.soft_active = 2;
  quota.tier = 2;
  quota.throttle_priority = -1;
  server.add_tenant("batch", quota);
  int admitted = 0, throttled = 0, rejected = 0;
  for (int i = 0; i < spec.burst; ++i) {
    const std::string name = "burst" + std::to_string(i);
    svc::RunRequest req;
    req.config = seq_config(spec, 0);
    req.steps = spec.steps;
    req.step_stall_s = spec.stall_s;  // keep the slots held during the burst
    const auto out = server.submit("batch", name, std::move(req));
    switch (out.admission) {
      case svc::Admission::kAdmitted: ++admitted; break;
      case svc::Admission::kThrottled: ++throttled; break;
      case svc::Admission::kRejected: ++rejected; break;
    }
    if (out.ticket != nullptr) config_of[name] = "seq0";
  }
  const bool verdicts_ok = admitted == 2 && throttled == 2 && rejected == 2;
  check(verdicts_ok, "burst verdicts are Admitted x2 Throttled x2 Rejected x2");
  server.wait_idle();
  snapshots.push_back(take_snapshot(server, "burst"));

  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  // -- end-of-soak verification ----------------------------------------------

  int digest_checks = 0, digest_mismatches = 0;
  int leaked_members = 0;
  std::uint64_t member_retries_seen = 0;
  int resumed_members = 0;
  for (const auto& m : server.members()) {
    if (m.phase != svc::MemberPhase::kDone) {
      ++leaked_members;
      std::fprintf(stderr, "soak FAIL: member %s leaked in phase %d\n",
                   m.name.c_str(), static_cast<int>(m.phase));
    }
    member_retries_seen += m.retry_delays_s.size();
    if (m.restarts > 0 && m.resumed_from > 0) ++resumed_members;
    if (m.last_state != svc::RunState::kCompleted) {
      std::fprintf(stderr, "soak FAIL: member %s ended %d (%s)\n",
                   m.name.c_str(), static_cast<int>(m.last_state),
                   m.error.c_str());
      ++g_failures;
      continue;
    }
    ++digest_checks;
    if (m.state_crc != want.at(config_of.at(m.name))) {
      ++digest_mismatches;
      std::fprintf(stderr, "soak FAIL: member %s digest %08x != %08x\n",
                   m.name.c_str(), m.state_crc,
                   want.at(config_of.at(m.name)));
    }
  }
  check(leaked_members == 0, "no member left active/backoff/parked");
  check(digest_mismatches == 0, "all digests match fault-free references");
  check(server.retries() >= static_cast<std::uint64_t>(faults_armed),
        "every armed fault forced at least one retry");
  check(resumed_members > 0, "at least one member resumed across a restart");
  check(drain_restart_cycles >= 2, "soak ran >= 2 drain/restart cycles");

  const svc::EngineStats st = server.engine_stats();
  const std::uint64_t terminal =
      st.completed + st.faulted + st.cancelled + st.deadline;
  check(st.submitted == terminal,
        "every submitted attempt reached a terminal state");
  check(st.queue_depth == 0, "engine queue drained");
  check(st.resumed >= static_cast<std::uint64_t>(resumed_members),
        "engine counted the checkpoint resumes");

  std::printf(
      "\n=== Service soak: %d waves x (%d seq + %d par) members, %d steps "
      "===\n",
      spec.waves, spec.seq_per_wave, spec.par_per_wave, spec.steps);
  std::printf(
      "%d members, %d faults armed, %llu retries, %d drain/restart cycles, "
      "%d resumed members, %.2f s wall\n",
      static_cast<int>(server.members().size()), faults_armed,
      static_cast<unsigned long long>(server.retries()), drain_restart_cycles,
      resumed_members, wall_s);
  std::printf(
      "engine: %llu submitted = %llu completed + %llu faulted + %llu "
      "cancelled + %llu deadline; %llu resumed\n",
      static_cast<unsigned long long>(st.submitted),
      static_cast<unsigned long long>(st.completed),
      static_cast<unsigned long long>(st.faulted),
      static_cast<unsigned long long>(st.cancelled),
      static_cast<unsigned long long>(st.deadline),
      static_cast<unsigned long long>(st.resumed));
  std::printf("burst verdicts: %d admitted, %d throttled, %d rejected\n",
              admitted, throttled, rejected);
  std::printf("digests: %d checked, %d mismatched\n", digest_checks,
              digest_mismatches);
  std::printf("soak verdict: %s\n\n", g_failures == 0 ? "PASS" : "FAIL");

  if (!opts.json_path.empty()) {
    obs::Report rep("service_soak");
    rep.config()
        .set("waves", spec.waves)
        .set("seq_per_wave", spec.seq_per_wave)
        .set("par_per_wave", spec.par_per_wave)
        .set("steps", spec.steps)
        .set("burst", spec.burst)
        .set("workers", cfg.engine.workers)
        .set("max_attempts", cfg.retry.max_attempts);
    obs::Json& snaps = rep.root().arr("snapshots");
    for (const auto& s : snapshots) {
      snaps.push()
          .set("label", s.label)
          .set("members_total", s.members_total)
          .set("done", s.done)
          .set("active", s.active)
          .set("backoff", s.backoff)
          .set("parked", s.parked)
          .set("retries", s.retries)
          .set("restarts", s.restarts)
          .set("engine_submitted", s.engine.submitted)
          .set("engine_completed", s.engine.completed)
          .set("engine_faulted", s.engine.faulted)
          .set("engine_cancelled", s.engine.cancelled)
          .set("engine_resumed", s.engine.resumed)
          .set("queue_depth", static_cast<std::int64_t>(s.engine.queue_depth))
          .set("flat_lines", static_cast<std::int64_t>(s.flat_lines));
    }
    rep.root()
        .obj("admission")
        .set("admitted", admitted)
        .set("throttled", throttled)
        .set("rejected", rejected);
    rep.root()
        .set("wall_s", wall_s)
        .set("members", static_cast<int>(server.members().size()))
        .set("faults_armed", faults_armed)
        .set("drain_restart_cycles", drain_restart_cycles)
        .set("retries", server.retries())
        .set("resumed_members", resumed_members)
        .set("digest_checks", digest_checks)
        .set("digest_mismatches", digest_mismatches)
        .set("leaked_members", leaked_members)
        .set("snapshot_count", static_cast<int>(snapshots.size()))
        .set("verdicts_deterministic", verdicts_ok)
        .set("soak_pass", g_failures == 0);
    if (!rep.write(opts.json_path)) return 1;
  }

  server.drain();
  std::error_code ec;
  fs::remove_all(ckpt_dir, ec);

  {
    const double rate = wall_s > 0.0
                            ? static_cast<double>(server.members().size()) /
                                  wall_s
                            : 0.0;
    auto* b = benchmark::RegisterBenchmark(
        "soak/total", [wall_s, rate](benchmark::State& state) {
          for (auto _ : state) state.SetIterationTime(wall_s);
          state.counters["members_per_s"] = rate;
        });
    b->UseManualTime()->Iterations(1);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return g_failures == 0 ? 0 : 1;
}
