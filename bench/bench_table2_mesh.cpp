// Reproduces Table 2: the cubed-sphere mesh configurations (ne64 ...
// ne4096) with their element counts, and benchmarks the actual mesh
// builder at laptop-feasible sizes.

#include <benchmark/benchmark.h>

#include "bench_common.hpp"

#include <cstdio>

#include "mesh/cubed_sphere.hpp"

namespace {

void print_table() {
  struct Row {
    const char* name;
    long long ne;
    long long paper_elems;
  };
  const Row rows[] = {
      {"ne64", 64, 24576},       {"ne256", 256, 393216},
      {"ne512", 512, 1572864},   {"ne1024", 1024, 6291456},
      {"ne2048", 2048, 25165824}, {"ne4096", 4096, 100663296},
  };
  std::printf("\n=== Table 2: mesh configurations (128 vertical levels) ===\n");
  std::printf("%-8s %14s %10s %16s %12s\n", "problem", "horizontal", "vertical",
              "#elements", "paper");
  for (const auto& r : rows) {
    std::printf("%-8s %5lld x %5lld x 6 %10d %16lld %12lld\n", r.name, r.ne,
                r.ne, 128, mesh::elements_for_ne(r.ne), r.paper_elems);
  }
  std::printf("\n");
}

void BM_BuildMesh(benchmark::State& state) {
  const int ne = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto m = mesh::CubedSphere::build(ne, mesh::kEarthRadius);
    benchmark::DoNotOptimize(m.nnodes());
  }
  state.counters["elements"] = static_cast<double>(6 * ne * ne);
}
BENCHMARK(BM_BuildMesh)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

}  // namespace

int main(int argc, char** argv) {
  // Accept the shared bench flags uniformly; nothing here is
  // size-dependent yet, but the flags must not reach gbench.
  (void)bench::BenchOptions::parse(argc, argv);
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
