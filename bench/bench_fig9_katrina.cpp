// Reproduces Figure 9: the hurricane-lifecycle experiment. A synthetic
// Katrina-class vortex is simulated at a coarse ("ne30") and a fine
// ("ne120") resolution analog (same 4x ratio, downsized meshes); the
// fine run must capture track and intensity, the coarse run loses the
// storm — the paper's panels (a)-(d).

#include <benchmark/benchmark.h>

#include "bench_common.hpp"

#include <cstdio>

#include "tc/katrina.hpp"

namespace {

void print_run(const tc::KatrinaRun& run, const tc::TcParams& vortex) {
  std::printf("--- ne%d ---\n", run.ne);
  std::printf("%6s %9s %9s %11s %9s %12s\n", "hour", "lat", "lon", "min ps",
              "MSW", "ref-dist km");
  for (std::size_t i = 0; i < run.track.fixes.size(); ++i) {
    const auto& f = run.track.fixes[i];
    double rlat, rlon;
    tc::reference_center(vortex, run.track.hours[i] * 3600.0,
                         mesh::kEarthRadius, rlat, rlon);
    std::printf("%6.1f %9.4f %9.4f %11.0f %9.1f %12.0f\n", run.track.hours[i],
                f.lat, f.lon, f.min_ps, f.msw,
                tc::great_circle(f.lat, f.lon, rlat, rlon,
                                 mesh::kEarthRadius) /
                    1000.0);
  }
  std::printf("mean track error %.0f km | intensity retention %.2f | deepest "
              "ps %.0f Pa\n\n",
              run.mean_track_error_km, run.intensity_retention,
              run.deepest_ps);
}

void print_figure() {
  tc::KatrinaConfig cfg;
  cfg.ne_coarse = 3;
  cfg.ne_fine = 12;
  cfg.nlev = 8;
  cfg.hours = 9.0;
  cfg.n_outputs = 6;
  const auto result = tc::run_katrina(cfg);
  std::printf("\n=== Figure 9: synthetic Katrina lifecycle, coarse vs fine "
              "===\n\n");
  print_run(result.coarse, cfg.vortex);
  print_run(result.fine, cfg.vortex);
  std::printf(
      "paper: ne30 (100 km) failed to simulate the hurricane; ne120 (25 km) "
      "produced a close-to-observation track and intensity.\n"
      "here:  the fine run keeps a coherent center (mean track error %.0f "
      "km vs %.0f km — %.0fx better) and a deeper cyclone (min ps %.0f vs "
      "%.0f Pa); the coarse run loses the storm mid-run (see the hour-6/7 "
      "fixes jumping thousands of km).\n\n",
      result.fine.mean_track_error_km, result.coarse.mean_track_error_km,
      result.coarse.mean_track_error_km /
          std::max(1.0, result.fine.mean_track_error_km),
      result.fine.deepest_ps, result.coarse.deepest_ps);
}

void BM_KatrinaStep(benchmark::State& state) {
  // Cost of one fine-mesh model step (dynamics + physics).
  tc::KatrinaConfig cfg;
  cfg.nlev = 8;
  cfg.hours = 0.2;
  cfg.n_outputs = 1;
  for (auto _ : state) {
    auto run = tc::run_katrina_at(8, cfg);
    benchmark::DoNotOptimize(run.deepest_ps);
  }
}
BENCHMARK(BM_KatrinaStep)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  // Accept the shared bench flags uniformly; nothing here is
  // size-dependent yet, but the flags must not reach gbench.
  (void)bench::BenchOptions::parse(argc, argv);
  print_figure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
