// Reproduces Figure 9: the hurricane-lifecycle experiment. A synthetic
// Katrina-class vortex is simulated at a coarse ("ne30") and a fine
// ("ne120") resolution analog (same 4x ratio, downsized meshes); the
// fine run must capture track and intensity, the coarse run loses the
// storm — the paper's panels (a)-(d).
//
// The whole experiment is the "katrina" scenario of the scenario::
// registry driven through model::Session — run `--list-scenarios` for
// the menu, `--scenario <name>` to point this harness at any registered
// storm-kind workload.

#include <benchmark/benchmark.h>

#include "bench_common.hpp"

#include <algorithm>
#include <cstdio>
#include <string>

#include "obs/report.hpp"
#include "scenario/experiments.hpp"

namespace {

void print_run(const scenario::KatrinaRun& run) {
  std::printf("--- ne%d ---\n", run.ne);
  std::printf("%6s %9s %9s %11s %9s %12s\n", "hour", "lat", "lon", "min ps",
              "MSW", "ref-dist km");
  for (std::size_t i = 0; i < run.track.fixes.size(); ++i) {
    const auto& f = run.track.fixes[i];
    std::printf("%6.1f %9.4f %9.4f %11.0f %9.1f %12.0f\n", run.track.hours[i],
                f.lat, f.lon, f.min_ps, f.msw, run.ref_dist_km[i]);
  }
  std::printf("mean track error %.0f km | intensity retention %.2f | deepest "
              "ps %.0f Pa\n\n",
              run.mean_track_error_km, run.intensity_retention,
              run.deepest_ps);
}

scenario::KatrinaConfig figure_config(const bench::BenchOptions& opts) {
  const scenario::Scenario& sc = scenario::get(opts.scenario_or("katrina"));
  scenario::KatrinaConfig cfg;
  cfg.ne_coarse = static_cast<int>(sc.param("ne_coarse", 3.0));
  cfg.ne_fine = opts.ne_or(sc.defaults.ne);
  cfg.nlev = sc.defaults.nlev;
  cfg.hours = 9.0;
  cfg.n_outputs = 6;
  if (opts.small) {
    cfg.ne_fine = std::min(cfg.ne_fine, 6);
    cfg.hours = 3.0;
    cfg.n_outputs = 3;
  }
  return cfg;
}

scenario::KatrinaResult run_figure(const scenario::KatrinaConfig& cfg) {
  const auto result = scenario::run_katrina(cfg);
  std::printf("\n=== Figure 9: synthetic Katrina lifecycle, coarse vs fine "
              "===\n\n");
  print_run(result.coarse);
  print_run(result.fine);
  std::printf(
      "paper: ne30 (100 km) failed to simulate the hurricane; ne120 (25 km) "
      "produced a close-to-observation track and intensity.\n"
      "here:  the fine run keeps a coherent center (mean track error %.0f "
      "km vs %.0f km — %.0fx better) and a deeper cyclone (min ps %.0f vs "
      "%.0f Pa); the coarse run loses the storm mid-run (see the hour-6/7 "
      "fixes jumping thousands of km).\n\n",
      result.fine.mean_track_error_km, result.coarse.mean_track_error_km,
      result.coarse.mean_track_error_km /
          std::max(1.0, result.fine.mean_track_error_km),
      result.fine.deepest_ps, result.coarse.deepest_ps);
  return result;
}

bool write_json(const std::string& path, const bench::BenchOptions& opts,
                const scenario::KatrinaConfig& cfg,
                const scenario::KatrinaResult& result) {
  obs::Report rep("fig9_katrina");
  rep.config()
      .set("scenario", opts.scenario_or("katrina"))
      .set("ne_coarse", cfg.ne_coarse)
      .set("ne_fine", cfg.ne_fine)
      .set("nlev", cfg.nlev)
      .set("hours", cfg.hours)
      .set("n_outputs", cfg.n_outputs)
      .set("small", opts.small);
  rep.root()
      .set("fine_track_error_km", result.fine.mean_track_error_km)
      .set("coarse_track_error_km", result.coarse.mean_track_error_km)
      .set("fine_deepest_ps", result.fine.deepest_ps)
      .set("coarse_deepest_ps", result.coarse.deepest_ps)
      .set("fine_intensity_retention", result.fine.intensity_retention)
      .set("fine_state_crc",
           static_cast<std::uint64_t>(result.fine.state_crc))
      .set("coarse_state_crc",
           static_cast<std::uint64_t>(result.coarse.state_crc));
  return rep.write(path);
}

void BM_KatrinaStep(benchmark::State& state) {
  // Cost of one fine-mesh model step (dynamics + physics).
  scenario::KatrinaConfig cfg;
  cfg.nlev = 8;
  cfg.hours = 0.2;
  cfg.n_outputs = 1;
  for (auto _ : state) {
    auto run = scenario::run_katrina_at(8, cfg);
    benchmark::DoNotOptimize(run.deepest_ps);
  }
}
BENCHMARK(BM_KatrinaStep)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opts = bench::BenchOptions::parse(argc, argv);
  const scenario::Scenario& sc = scenario::get(opts.scenario_or("katrina"));
  if (sc.kind != "storm") {
    std::fprintf(stderr,
                 "bench_fig9_katrina: scenario \"%s\" is kind \"%s\", needs "
                 "a storm-kind workload\n",
                 sc.name.c_str(), sc.kind.c_str());
    return 2;
  }
  const scenario::KatrinaConfig cfg = figure_config(opts);
  const scenario::KatrinaResult result = run_figure(cfg);
  if (!opts.json_path.empty() &&
      !write_json(opts.json_path, opts, cfg, result)) {
    return 1;
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
