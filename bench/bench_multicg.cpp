// Multi-core-group sharding sweep: one sequential pipeline-backend
// model::Session stepped at 1 / 2 / 4 core groups behind one shared
// memory controller (sw::CgPool). The remap arithmetic is per-element
// independent, so every width must produce a bit-identical final state;
// what changes is the modeled offload time — N groups divide the element
// work but contend for the controller, so the speedup must land strictly
// between 1x and the ideal Nx.
//
// A second phase places four pipeline members through svc::Engine onto
// two 2-group pools under both placement policies (pack vs spread) and
// verifies placement never perturbs the members' state digests.
//
// Gates (exit 1 on violation):
//   - every sweep digest equals the 1-CG digest
//   - modeled speedup at the widest sweep point is > 1x and < ideal Nx
//   - pack and spread engine runs agree with each other and the sweep
//
// Flags (bench_common.hpp): --json --trace --small --steps --ne
//   --core-groups N   widest sweep point (default 4)

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "accel/accel_driver.hpp"
#include "bench_common.hpp"
#include "homme/checkpoint.hpp"
#include "model/session.hpp"
#include "obs/report.hpp"
#include "svc/engine.hpp"
#include "sw/cg_pool.hpp"
#include "sw/contention.hpp"

namespace {

/// CRC32 of the raw field arrays (the svc::Engine digest recipe): the
/// serialized checkpoint image self-cancels under CRC linearity, so hash
/// the numbers, not the stream.
std::uint32_t state_digest(const model::Session& session) {
  const homme::State state = session.state();
  std::vector<std::uint32_t> crcs;
  crcs.reserve(state.size() * 6 + 2);
  auto add = [&crcs](std::span<const double> v) {
    crcs.push_back(homme::crc32(v.data(), v.size() * sizeof(double)));
  };
  for (const auto& e : state) {
    add(e.u1.span());
    add(e.u2.span());
    add(e.T.span());
    add(e.dp.span());
    add(e.qdp.span());
    add(e.phis.span());
  }
  crcs.push_back(static_cast<std::uint32_t>(state.size()));
  crcs.push_back(static_cast<std::uint32_t>(session.step_count()));
  return homme::crc32(crcs.data(), crcs.size() * sizeof(std::uint32_t));
}

struct SweepPoint {
  int core_groups = 0;
  std::uint32_t digest = 0;
  double modeled_s = 0.0;  ///< summed accel offload seconds over the run
  double speedup = 1.0;    ///< modeled_s(1 CG) / modeled_s
  int launches = 0;
  int fallbacks = 0;
  int stream_high_water = 0;
  std::uint64_t contended_ops = 0;
  std::uint64_t contended_bytes = 0;
  double slowdown = 1.0;         ///< modeled per-stream inflation at this width
  double per_cg_gbytes_s = 0.0;  ///< modeled per-CG bandwidth at this width
};

model::SessionConfig sweep_config(int ne, int cgs) {
  // remap_freq 1 puts one offloaded remap in every step — the densest
  // possible contention signal per simulated second.
  return model::SessionConfig{}
      .with_ne(ne)
      .with_levels(8, 2)
      .with_remap_freq(1)
      .with_backend(model::SessionConfig::Backend::kPipeline)
      .with_core_groups(cgs);
}

SweepPoint run_sweep_point(int ne, int steps, int cgs,
                           const std::string& trace_path) {
  model::SessionConfig cfg = sweep_config(ne, cgs);
  if (!trace_path.empty()) cfg.with_trace(true);
  model::Session session(cfg);
  auto* pa = dynamic_cast<accel::PipelineAccelerator*>(session.accelerator(0));

  SweepPoint pt;
  pt.core_groups = cgs;
  int seen = 0;
  for (int i = 0; i < steps; ++i) {
    session.step();
    if (pa != nullptr && pa->launches() > seen) {
      pt.modeled_s += pa->last_stats().seconds;
      seen = pa->launches();
    }
  }
  pt.digest = state_digest(session);
  if (pa != nullptr) {
    pt.launches = pa->launches();
    pt.fallbacks = pa->fallbacks();
    const sw::MemoryContention::Stats mc = pa->cg_pool()->contention().stats();
    pt.stream_high_water = mc.stream_high_water;
    pt.contended_ops = mc.contended_ops;
    pt.contended_bytes = mc.contended_bytes;
  }
  pt.slowdown = sw::MemoryContention::slowdown(cgs);
  pt.per_cg_gbytes_s = sw::MemoryContention::per_stream_bandwidth(cgs) / 1e9;
  if (!trace_path.empty() &&
      !session.tracer().write_chrome_trace(trace_path)) {
    std::fprintf(stderr, "multicg: cannot write trace %s\n",
                 trace_path.c_str());
  }
  return pt;
}

// -- engine placement phase --------------------------------------------------

struct PlacementPoint {
  std::string policy;
  std::uint64_t placed_members = 0;
  int cg_groups_busy_high_water = 0;
  int cg_stream_high_water = 0;
  std::uint64_t contended_ops = 0;
  std::vector<std::uint32_t> crcs;  ///< per member, submission order
};

PlacementPoint run_placement(int ne, int steps,
                             svc::EngineConfig::Placement policy) {
  svc::EngineConfig cfg;
  cfg.workers = 2;
  cfg.queue_capacity = 8;
  cfg.cg_pools = 2;
  cfg.core_groups_per_pool = 2;
  cfg.placement = policy;
  svc::Engine engine(cfg);

  std::vector<svc::RunTicket> tickets;
  for (int i = 0; i < 4; ++i) {
    svc::RunRequest req;
    req.config = sweep_config(ne, 1);
    req.config.core_groups = 1;  // engine placement overrides with a seat
    req.steps = steps;
    tickets.push_back(engine.submit(std::move(req)));
  }
  PlacementPoint pt;
  pt.policy =
      policy == svc::EngineConfig::Placement::kPack ? "pack" : "spread";
  for (auto& t : tickets) pt.crcs.push_back(t->wait().state_crc);

  const svc::EngineStats st = engine.stats();
  pt.placed_members = st.placed_members;
  pt.cg_groups_busy_high_water = st.cg_groups_busy_high_water;
  pt.cg_stream_high_water = st.cg_stream_high_water;
  pt.contended_ops = st.cg_contended_ops;
  engine.shutdown();
  return pt;
}

// -- reporting ---------------------------------------------------------------

int digest_mismatches(const std::vector<SweepPoint>& sweep) {
  int bad = 0;
  for (const auto& pt : sweep)
    if (pt.digest != sweep.front().digest) ++bad;
  return bad;
}

bool write_json(const std::string& path, int ne, int steps,
                const std::vector<SweepPoint>& sweep,
                const std::vector<PlacementPoint>& placements,
                int placement_mismatches) {
  obs::Report rep("multicg");
  rep.config().set("ne", ne).set("steps", steps).set("nlev", 8).set("qsize",
                                                                    2);
  obs::Json& records = rep.root().arr("records");
  for (const auto& pt : sweep) {
    records.push()
        .set("core_groups", pt.core_groups)
        .set("digest", static_cast<std::int64_t>(pt.digest))
        .set("modeled_s", pt.modeled_s)
        .set("speedup", pt.speedup)
        .set("launches", pt.launches)
        .set("fallbacks", pt.fallbacks)
        .set("stream_high_water", pt.stream_high_water)
        .set("contended_ops", static_cast<std::int64_t>(pt.contended_ops))
        .set("contended_bytes",
             static_cast<std::int64_t>(pt.contended_bytes))
        .set("slowdown", pt.slowdown)
        .set("per_cg_gbytes_s", pt.per_cg_gbytes_s);
  }
  obs::Json& pl = rep.root().arr("placement");
  for (const auto& pt : placements) {
    obs::Json& row = pl.push();
    row.set("policy", pt.policy)
        .set("placed_members", static_cast<std::int64_t>(pt.placed_members))
        .set("cg_groups_busy_high_water", pt.cg_groups_busy_high_water)
        .set("cg_stream_high_water", pt.cg_stream_high_water)
        .set("contended_ops", static_cast<std::int64_t>(pt.contended_ops));
  }
  const SweepPoint& widest = sweep.back();
  rep.root()
      .set("digest_mismatches", digest_mismatches(sweep))
      .set("placement_digest_mismatches", placement_mismatches)
      .set("max_core_groups", widest.core_groups)
      .set("speedup_max_cgs", widest.speedup)
      .set("contention_slowdown_max", widest.slowdown);
  return rep.write(path);
}

void print_table(int ne, int steps, const std::vector<SweepPoint>& sweep) {
  std::printf("\n=== Multi-CG sharding: ne%d pipeline session x %d steps "
              "===\n",
              ne, steps);
  std::printf("%6s %12s %10s %10s %12s %14s %12s %10s\n", "CGs", "modeled s",
              "speedup", "slowdown", "stream_hw", "contended_ops", "GB/s/CG",
              "digest");
  for (const auto& pt : sweep)
    std::printf("%6d %12.6f %9.2fx %9.2fx %12d %14llu %12.1f %10u\n",
                pt.core_groups, pt.modeled_s, pt.speedup, pt.slowdown,
                pt.stream_high_water,
                static_cast<unsigned long long>(pt.contended_ops),
                pt.per_cg_gbytes_s, pt.digest);
  std::printf("\n");
}

void print_placements(const std::vector<PlacementPoint>& placements,
                      int mismatches) {
  std::printf("=== Engine placement: 4 members on 2 pools x 2 CGs ===\n");
  std::printf("%8s %8s %10s %10s %14s\n", "policy", "placed", "groups_hw",
              "stream_hw", "contended_ops");
  for (const auto& pt : placements)
    std::printf("%8s %8llu %10d %10d %14llu\n", pt.policy.c_str(),
                static_cast<unsigned long long>(pt.placed_members),
                pt.cg_groups_busy_high_water, pt.cg_stream_high_water,
                static_cast<unsigned long long>(pt.contended_ops));
  std::printf("placement-independent digests: %s\n\n",
              mismatches == 0 ? "yes" : "NO");
}

void register_benchmarks(const std::vector<SweepPoint>& sweep) {
  for (const auto& pt : sweep) {
    const double s = pt.modeled_s;
    const double speedup = pt.speedup;
    auto* b = benchmark::RegisterBenchmark(
        ("multicg/core_groups:" + std::to_string(pt.core_groups)).c_str(),
        [s, speedup](benchmark::State& state) {
          for (auto _ : state) state.SetIterationTime(s);
          state.counters["speedup"] = speedup;
        });
    b->UseManualTime()->Iterations(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opts = bench::BenchOptions::parse(argc, argv);
  const int ne = opts.ne_or(4);
  const int steps = opts.steps_or(opts.small ? 3 : 6);
  const int max_cgs = opts.core_groups_or(4);

  std::vector<int> widths;
  for (int w = 1; w <= max_cgs; w *= 2) widths.push_back(w);
  if (widths.back() != max_cgs) widths.push_back(max_cgs);

  std::vector<SweepPoint> sweep;
  for (int w : widths) {
    // The widest point carries the --trace timeline (per-CG tracks).
    const bool last = w == widths.back();
    sweep.push_back(
        run_sweep_point(ne, steps, w, last ? opts.trace_path : ""));
    sweep.back().speedup =
        sweep.back().modeled_s > 0.0
            ? sweep.front().modeled_s / sweep.back().modeled_s
            : 1.0;
  }
  print_table(ne, steps, sweep);

  std::vector<PlacementPoint> placements;
  placements.push_back(
      run_placement(ne, steps, svc::EngineConfig::Placement::kPack));
  placements.push_back(
      run_placement(ne, steps, svc::EngineConfig::Placement::kSpread));
  int placement_mismatches = 0;
  for (const auto& pt : placements)
    for (std::uint32_t crc : pt.crcs)
      if (crc != sweep.front().digest) ++placement_mismatches;
  print_placements(placements, placement_mismatches);

  bool ok = true;
  if (digest_mismatches(sweep) != 0) {
    std::fprintf(stderr,
                 "FAIL: sharded digests differ from the 1-CG digest\n");
    ok = false;
  }
  const SweepPoint& widest = sweep.back();
  if (widest.core_groups > 1 && widest.speedup <= 1.0) {
    std::fprintf(stderr, "FAIL: %d-CG speedup %.3fx is not > 1x\n",
                 widest.core_groups, widest.speedup);
    ok = false;
  }
  if (widest.speedup >= static_cast<double>(widest.core_groups)) {
    std::fprintf(stderr,
                 "FAIL: %d-CG speedup %.3fx reached the contention-free "
                 "ideal %dx\n",
                 widest.core_groups, widest.speedup, widest.core_groups);
    ok = false;
  }
  if (placement_mismatches != 0) {
    std::fprintf(stderr,
                 "FAIL: engine placement perturbed %d member digests\n",
                 placement_mismatches);
    ok = false;
  }

  if (!opts.json_path.empty() &&
      !write_json(opts.json_path, ne, steps, sweep, placements,
                  placement_mismatches)) {
    return 1;
  }
  if (!ok) return 1;

  register_benchmarks(sweep);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
