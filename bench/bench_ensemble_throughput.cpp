// Ensemble throughput through the svc:: engine: N ne4 members, each a
// model::Session sharing one immutable MeshBundle, multiplexed over a
// fixed worker pool at 1/2/4/8 workers.
//
// What this measures honestly: each member-step pairs a short dynamics
// step with a modeled coupler / data-ingest stall (--latency-us, the
// blocking I/O every real ensemble member pays between steps). The
// worker pool exists to overlap exactly that stall, so member-steps/s
// must rise strictly from 1 to 4 workers even on one core; on a
// multi-core host the compute overlaps too. The 8-worker sweep point
// doubles as the determinism probe: every member's final-state CRC must
// equal its 1-worker digest bit for bit.
//
// Flags (bench_common.hpp): --json --trace --small --steps --ne
//   --workers N   run the sweep {1, N} instead of {1,2,4,8}
//   --members N   ensemble size (default 32)
//   --latency-us  modeled per-step stall (default 40000)

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "model/session.hpp"
#include "obs/report.hpp"
#include "svc/engine.hpp"

namespace {

struct SweepPoint {
  int workers = 0;
  double wall_s = 0.0;
  double member_steps_per_s = 0.0;
  double utilization = 0.0;
  std::size_t queue_high_water = 0;
  std::uint64_t completed = 0;
  std::uint64_t faulted = 0;
  std::size_t mesh_bundle_bytes = 0;
  std::size_t mesh_bytes_unshared = 0;
  std::vector<std::uint32_t> crcs;  ///< per member index
};

struct EnsembleSpec {
  int ne = 4;
  int nlev = 4;
  int qsize = 1;
  int members = 32;
  int steps = 3;
  double stall_s = 0.040;
};

model::SessionConfig member_config(const EnsembleSpec& spec, int i) {
  // Members differ in remap cadence so each carries a distinct final
  // state — a per-member digest, not one digest repeated N times.
  return model::SessionConfig{}
      .with_ne(spec.ne)
      .with_levels(spec.nlev, spec.qsize)
      .with_remap_freq(1 + i % 3);
}

SweepPoint run_sweep_point(const EnsembleSpec& spec, int workers) {
  svc::Engine engine(
      {.workers = workers, .queue_capacity = 8, .reject_when_full = false});
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<svc::RunTicket> tickets;
  tickets.reserve(static_cast<std::size_t>(spec.members));
  for (int i = 0; i < spec.members; ++i) {
    svc::RunRequest req;
    req.config = member_config(spec, i);
    req.steps = spec.steps;
    req.priority = i % 3;
    req.step_stall_s = spec.stall_s;
    tickets.push_back(engine.submit(std::move(req)));  // blocks when full
  }

  SweepPoint pt;
  pt.workers = workers;
  for (auto& t : tickets) {
    const svc::RunResult& res = t->wait();
    pt.crcs.push_back(res.state_crc);
    if (res.state == svc::RunState::kFaulted)
      std::fprintf(stderr, "member %llu faulted: %s\n",
                   static_cast<unsigned long long>(t->id()),
                   res.error.c_str());
  }
  pt.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const svc::EngineStats st = engine.stats();
  pt.member_steps_per_s =
      pt.wall_s > 0.0 ? static_cast<double>(st.member_steps) / pt.wall_s : 0.0;
  pt.utilization = st.utilization();
  pt.queue_high_water = st.queue_high_water;
  pt.completed = st.completed;
  pt.faulted = st.faulted;
  pt.mesh_bundle_bytes = st.mesh_bundle_bytes;
  pt.mesh_bytes_unshared = st.mesh_bytes_unshared;
  engine.shutdown();
  return pt;
}

bool monotonic_1_to_4(const std::vector<SweepPoint>& sweep) {
  double prev = 0.0;
  bool ok = true;
  for (const auto& pt : sweep) {
    if (pt.workers > 4) break;
    ok = ok && pt.member_steps_per_s > prev;
    prev = pt.member_steps_per_s;
  }
  return ok;
}

bool bit_identical(const std::vector<SweepPoint>& sweep) {
  for (const auto& pt : sweep)
    if (pt.crcs != sweep.front().crcs) return false;
  return true;
}

bool write_json(const std::string& path, const EnsembleSpec& spec,
                const std::vector<SweepPoint>& sweep, svc::Engine& probe) {
  obs::Report rep("ensemble_throughput");
  rep.config()
      .set("ne", spec.ne)
      .set("nlev", spec.nlev)
      .set("qsize", spec.qsize)
      .set("members", spec.members)
      .set("steps", spec.steps)
      .set("latency_us", spec.stall_s * 1e6);
  obs::Json& records = rep.root().arr("sweep");
  for (const auto& pt : sweep) {
    records.push()
        .set("workers", pt.workers)
        .set("wall_s", pt.wall_s)
        .set("member_steps_per_s", pt.member_steps_per_s)
        .set("speedup_vs_1", pt.member_steps_per_s /
                                 sweep.front().member_steps_per_s)
        .set("worker_utilization", pt.utilization)
        .set("queue_high_water",
             static_cast<std::int64_t>(pt.queue_high_water))
        .set("completed", static_cast<std::int64_t>(pt.completed))
        .set("faulted", static_cast<std::int64_t>(pt.faulted))
        .set("mesh_bundle_bytes",
             static_cast<std::int64_t>(pt.mesh_bundle_bytes))
        .set("mesh_bytes_unshared",
             static_cast<std::int64_t>(pt.mesh_bytes_unshared));
  }
  rep.root()
      .set("throughput_monotonic_1_to_4", monotonic_1_to_4(sweep))
      .set("bit_identical_across_worker_counts", bit_identical(sweep));
  // A live engine's aggregate telemetry, so downstream tooling sees the
  // fields svc::Engine::summary_report also emits.
  const svc::EngineStats est = probe.stats();
  rep.root()
      .obj("engine_summary")
      .set("workers", est.workers)
      .set("submitted", est.submitted)
      .set("completed", est.completed)
      .set("faulted", est.faulted)
      .set("cancelled", est.cancelled)
      .set("deadline", est.deadline)
      .set("member_steps", est.member_steps)
      .set("member_steps_per_s", est.member_steps_per_s())
      .set("worker_utilization", est.utilization())
      .set("queue_high_water",
           static_cast<std::int64_t>(est.queue_high_water))
      .set("mesh_bundles", static_cast<std::int64_t>(est.mesh_bundles))
      .set("mesh_bundle_bytes",
           static_cast<std::int64_t>(est.mesh_bundle_bytes))
      .set("mesh_bytes_unshared",
           static_cast<std::int64_t>(est.mesh_bytes_unshared));
  return rep.write(path);
}

void print_table(const EnsembleSpec& spec,
                 const std::vector<SweepPoint>& sweep) {
  std::printf(
      "\n=== Ensemble throughput: %d ne%d members x %d steps "
      "(stall %.0f us/step) ===\n",
      spec.members, spec.ne, spec.steps, spec.stall_s * 1e6);
  std::printf("%8s %10s %16s %10s %8s %10s\n", "workers", "wall_s",
              "member-steps/s", "speedup", "util", "queue_hw");
  for (const auto& pt : sweep)
    std::printf("%8d %10.3f %16.2f %9.2fx %7.0f%% %10zu\n", pt.workers,
                pt.wall_s, pt.member_steps_per_s,
                pt.member_steps_per_s / sweep.front().member_steps_per_s,
                pt.utilization * 100.0, pt.queue_high_water);
  std::printf("shared mesh: %zu bytes resident vs %zu unshared (%.1fx)\n",
              sweep.back().mesh_bundle_bytes,
              sweep.back().mesh_bytes_unshared,
              sweep.back().mesh_bundle_bytes
                  ? static_cast<double>(sweep.back().mesh_bytes_unshared) /
                        static_cast<double>(sweep.back().mesh_bundle_bytes)
                  : 0.0);
  std::printf("member-steps/s strictly increasing 1->4 workers: %s\n",
              monotonic_1_to_4(sweep) ? "yes" : "NO");
  std::printf("final states bit-identical across worker counts: %s\n\n",
              bit_identical(sweep) ? "yes" : "NO");
}

void register_benchmarks(const std::vector<SweepPoint>& sweep) {
  for (const auto& pt : sweep) {
    const double wall = pt.wall_s;
    const double rate = pt.member_steps_per_s;
    auto* b = benchmark::RegisterBenchmark(
        ("ensemble/workers:" + std::to_string(pt.workers)).c_str(),
        [wall, rate](benchmark::State& state) {
          for (auto _ : state) state.SetIterationTime(wall);
          state.counters["member_steps_per_s"] = rate;
        });
    b->UseManualTime()->Iterations(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opts = bench::BenchOptions::parse(argc, argv);

  EnsembleSpec spec;
  spec.ne = opts.ne_or(4);
  spec.members = opts.members_or(opts.small ? 8 : 32);
  spec.steps = opts.steps_or(opts.small ? 2 : 3);
  spec.stall_s = opts.latency_us_or(40000) * 1e-6;

  std::vector<int> worker_counts{1, 2, 4, 8};
  if (opts.workers > 0)
    worker_counts = opts.workers > 1 ? std::vector<int>{1, opts.workers}
                                     : std::vector<int>{1};
  else if (opts.small)
    worker_counts = {1, 2};

  std::vector<SweepPoint> sweep;
  for (int w : worker_counts) sweep.push_back(run_sweep_point(spec, w));

  print_table(spec, sweep);

  if (!opts.json_path.empty()) {
    // A throwaway engine re-runs a 2-member slice so the JSON carries a
    // live engine summary_report alongside the sweep records.
    svc::Engine probe({.workers = 1, .queue_capacity = 4});
    for (int i = 0; i < 2; ++i) {
      svc::RunRequest req;
      req.config = member_config(spec, i);
      req.steps = 1;
      probe.submit(std::move(req))->wait();
    }
    if (!write_json(opts.json_path, spec, sweep, probe)) return 1;
  }

  register_benchmarks(sweep);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
