// Ensemble throughput through the svc:: engine: N ne4 members, each a
// model::Session sharing one immutable MeshBundle, multiplexed over a
// fixed worker pool at 1/2/4/8 workers.
//
// What this measures honestly: each member-step pairs a short dynamics
// step with a modeled coupler / data-ingest stall (--latency-us, the
// blocking I/O every real ensemble member pays between steps). The
// worker pool exists to overlap exactly that stall, so member-steps/s
// must rise strictly from 1 to 4 workers even on one core; on a
// multi-core host the compute overlaps too. The 8-worker sweep point
// doubles as the determinism probe: every member's final-state CRC must
// equal its 1-worker digest bit for bit.
//
// Two more phases exercise the copy-on-write field store underneath:
//
//   fork scaling   one warm parent Session is fork()ed into 32/256/1024
//                  members; each fork aliases every state chunk, so the
//                  resident bytes/member at fork time collapse versus the
//                  private-state (logical) cost. Every fork then runs a
//                  step on a small thread pool — first writes un-share
//                  chunk by chunk — and sharing is re-measured after.
//
//   checkpointing  one session saves every step through the async delta
//                  writer (a full image every --ckpt-interval saves,
//                  dirty-chunk records between), then restores the chain
//                  and verifies it is bit-identical to the live state.
//
// Flags (bench_common.hpp): --json --trace --small --steps --ne
//   --workers N       run the sweep {1, N} instead of {1,2,4,8}
//   --members N       ensemble size (default 32)
//   --latency-us      modeled per-step stall (default 40000)
//   --ckpt-interval K full checkpoint every K saves (default 4)

#include <benchmark/benchmark.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "homme/checkpoint.hpp"
#include "model/session.hpp"
#include "obs/report.hpp"
#include "svc/engine.hpp"

namespace {

struct SweepPoint {
  int workers = 0;
  double wall_s = 0.0;
  double member_steps_per_s = 0.0;
  double utilization = 0.0;
  std::size_t queue_high_water = 0;
  std::uint64_t completed = 0;
  std::uint64_t faulted = 0;
  std::size_t mesh_bundle_bytes = 0;
  std::size_t mesh_bytes_unshared = 0;
  std::vector<std::uint32_t> crcs;  ///< per member index
};

struct EnsembleSpec {
  int ne = 4;
  int nlev = 4;
  int qsize = 1;
  int members = 32;
  int steps = 3;
  double stall_s = 0.040;
};

model::SessionConfig member_config(const EnsembleSpec& spec, int i) {
  // Members differ in remap cadence so each carries a distinct final
  // state — a per-member digest, not one digest repeated N times.
  return model::SessionConfig{}
      .with_ne(spec.ne)
      .with_levels(spec.nlev, spec.qsize)
      .with_remap_freq(1 + i % 3);
}

SweepPoint run_sweep_point(const EnsembleSpec& spec, int workers) {
  svc::Engine engine(
      {.workers = workers, .queue_capacity = 8, .reject_when_full = false});
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<svc::RunTicket> tickets;
  tickets.reserve(static_cast<std::size_t>(spec.members));
  for (int i = 0; i < spec.members; ++i) {
    svc::RunRequest req;
    req.config = member_config(spec, i);
    req.steps = spec.steps;
    req.priority = i % 3;
    req.step_stall_s = spec.stall_s;
    tickets.push_back(engine.submit(std::move(req)));  // blocks when full
  }

  SweepPoint pt;
  pt.workers = workers;
  for (auto& t : tickets) {
    const svc::RunResult& res = t->wait();
    pt.crcs.push_back(res.state_crc);
    if (res.state == svc::RunState::kFaulted)
      std::fprintf(stderr, "member %llu faulted: %s\n",
                   static_cast<unsigned long long>(t->id()),
                   res.error.c_str());
  }
  pt.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const svc::EngineStats st = engine.stats();
  pt.member_steps_per_s =
      pt.wall_s > 0.0 ? static_cast<double>(st.member_steps) / pt.wall_s : 0.0;
  pt.utilization = st.utilization();
  pt.queue_high_water = st.queue_high_water;
  pt.completed = st.completed;
  pt.faulted = st.faulted;
  pt.mesh_bundle_bytes = st.mesh_bundle_bytes;
  pt.mesh_bytes_unshared = st.mesh_bytes_unshared;
  engine.shutdown();
  return pt;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// -- fork scaling ------------------------------------------------------------

struct ForkPoint {
  int members = 0;
  int steps = 0;
  double fork_s = 0.0;  ///< wall time to fork all members
  std::size_t logical_bytes_per_member = 0;   ///< private-state cost
  std::size_t resident_bytes_per_member = 0;  ///< COW cost at fork time
  double reduction_x = 0.0;                   ///< logical / resident
  double cow_shared_fraction = 0.0;           ///< at fork time
  double post_step_resident_bytes_per_member = 0.0;
  double post_step_shared_fraction = 0.0;
  double member_steps_per_s = 0.0;  ///< stepping the forks on a pool
};

ForkPoint run_fork_point(const model::Session& parent, int members,
                         int steps) {
  ForkPoint pt;
  pt.members = members;
  pt.steps = steps;

  auto t0 = std::chrono::steady_clock::now();
  std::vector<std::unique_ptr<model::Session>> forks;
  forks.reserve(static_cast<std::size_t>(members));
  for (int i = 0; i < members; ++i) forks.push_back(parent.fork());
  pt.fork_s = seconds_since(t0);

  homme::StoreStats at_fork;
  for (const auto& f : forks) at_fork += f->store_stats();
  const auto per = [&](std::size_t total) {
    return total / static_cast<std::size_t>(members);
  };
  pt.logical_bytes_per_member = per(at_fork.logical_bytes);
  pt.resident_bytes_per_member = per(at_fork.resident_bytes);
  pt.reduction_x =
      at_fork.resident_bytes > 0
          ? static_cast<double>(at_fork.logical_bytes) /
                static_cast<double>(at_fork.resident_bytes)
          : 0.0;
  pt.cow_shared_fraction = at_fork.shared_fraction();

  // Step every fork on a small pool: the writes un-share dynamics chunks
  // (phis stays aliased), and concurrent COW on shared buffers is exactly
  // the contract the chunk refcounts exist for.
  const unsigned pool =
      std::clamp(std::thread::hardware_concurrency(), 2u, 8u);
  std::atomic<int> next{0};
  t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(pool);
  for (unsigned t = 0; t < pool; ++t) {
    threads.emplace_back([&] {
      for (;;) {
        const int i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= members) return;
        for (int s = 0; s < steps; ++s)
          forks[static_cast<std::size_t>(i)]->step();
      }
    });
  }
  for (auto& t : threads) t.join();
  const double step_s = seconds_since(t0);
  pt.member_steps_per_s =
      step_s > 0.0 ? static_cast<double>(members) * steps / step_s : 0.0;

  homme::StoreStats after;
  for (const auto& f : forks) after += f->store_stats();
  pt.post_step_resident_bytes_per_member =
      static_cast<double>(after.resident_bytes) / members;
  pt.post_step_shared_fraction = after.shared_fraction();
  return pt;
}

// -- delta checkpointing -----------------------------------------------------

struct CkptResult {
  int full_interval = 0;
  int steps = 0;
  std::uint64_t saves = 0, fulls = 0, deltas = 0;
  std::uint64_t bytes_written = 0;
  double bytes_per_step = 0.0;
  std::size_t full_image_bytes = 0;  ///< on-disk size of "<base>.full"
  double avg_delta_bytes = 0.0;
  double dirty_chunk_fraction = 0.0;  ///< chunks written / chunk slots
  std::uint64_t blocked_saves = 0;
  bool restore_ok = false;  ///< chain restore bit-identical to live state
};

CkptResult run_checkpoint_phase(const EnsembleSpec& spec, int full_interval,
                                int steps) {
  namespace fs = std::filesystem;
  const std::string base =
      (fs::temp_directory_path() /
       ("swcam_ens_ckpt_" + std::to_string(::getpid())))
          .string();

  CkptResult r;
  r.full_interval = full_interval;
  r.steps = steps;
  {
    model::Session session(
        member_config(spec, 0)
            .with_delta_checkpoints(base, /*freq=*/1, full_interval));
    session.run(steps);  // one async delta-chain save per step

    // Digest of the live state, then restore the chain over it: the last
    // save was at the final step, so the round trip must be bit-exact.
    auto digest = [](const homme::State& s) {
      const auto crcs = homme::chunk_crcs(s);
      return homme::crc32(crcs.data(), crcs.size() * sizeof(std::uint32_t));
    };
    const std::uint32_t live = digest(session.state());
    session.restore();  // drains the writer first
    r.restore_ok = digest(session.state()) == live;

    const auto st = session.checkpoint_stats();
    r.saves = st.saves;
    r.fulls = st.fulls;
    r.deltas = st.deltas;
    r.bytes_written = st.bytes_written;
    r.bytes_per_step = steps > 0
                           ? static_cast<double>(st.bytes_written) / steps
                           : 0.0;
    r.blocked_saves = st.blocked_saves;
    r.dirty_chunk_fraction =
        st.chunk_slots > 0
            ? static_cast<double>(st.chunks_written) /
                  static_cast<double>(st.chunk_slots)
            : 0.0;
  }
  std::error_code ec;
  r.full_image_bytes =
      static_cast<std::size_t>(fs::file_size(base + ".full", ec));
  if (r.deltas > 0 && r.bytes_written > r.fulls * r.full_image_bytes) {
    r.avg_delta_bytes =
        static_cast<double>(r.bytes_written -
                            r.fulls * r.full_image_bytes) /
        static_cast<double>(r.deltas);
  }
  fs::remove(base + ".full", ec);
  for (int k = 1; fs::remove(base + ".d" + std::to_string(k), ec); ++k) {
  }
  return r;
}

bool monotonic_1_to_4(const std::vector<SweepPoint>& sweep) {
  double prev = 0.0;
  bool ok = true;
  for (const auto& pt : sweep) {
    if (pt.workers > 4) break;
    ok = ok && pt.member_steps_per_s > prev;
    prev = pt.member_steps_per_s;
  }
  return ok;
}

bool bit_identical(const std::vector<SweepPoint>& sweep) {
  for (const auto& pt : sweep)
    if (pt.crcs != sweep.front().crcs) return false;
  return true;
}

bool write_json(const std::string& path, const EnsembleSpec& spec,
                const std::vector<SweepPoint>& sweep,
                const std::vector<ForkPoint>& forks, const CkptResult& ckpt,
                svc::Engine& probe) {
  obs::Report rep("ensemble_throughput");
  rep.config()
      .set("ne", spec.ne)
      .set("nlev", spec.nlev)
      .set("qsize", spec.qsize)
      .set("members", spec.members)
      .set("steps", spec.steps)
      .set("latency_us", spec.stall_s * 1e6);
  obs::Json& records = rep.root().arr("sweep");
  for (const auto& pt : sweep) {
    records.push()
        .set("workers", pt.workers)
        .set("wall_s", pt.wall_s)
        .set("member_steps_per_s", pt.member_steps_per_s)
        .set("speedup_vs_1", pt.member_steps_per_s /
                                 sweep.front().member_steps_per_s)
        .set("worker_utilization", pt.utilization)
        .set("queue_high_water",
             static_cast<std::int64_t>(pt.queue_high_water))
        .set("completed", static_cast<std::int64_t>(pt.completed))
        .set("faulted", static_cast<std::int64_t>(pt.faulted))
        .set("mesh_bundle_bytes",
             static_cast<std::int64_t>(pt.mesh_bundle_bytes))
        .set("mesh_bytes_unshared",
             static_cast<std::int64_t>(pt.mesh_bytes_unshared));
  }
  obs::Json& fork_records = rep.root().arr("fork_scaling");
  for (const auto& pt : forks) {
    fork_records.push()
        .set("members", pt.members)
        .set("steps", pt.steps)
        .set("fork_s", pt.fork_s)
        .set("logical_bytes_per_member",
             static_cast<std::int64_t>(pt.logical_bytes_per_member))
        .set("resident_bytes_per_member",
             static_cast<std::int64_t>(pt.resident_bytes_per_member))
        .set("reduction_x", pt.reduction_x)
        .set("cow_shared_fraction", pt.cow_shared_fraction)
        .set("post_step_resident_bytes_per_member",
             pt.post_step_resident_bytes_per_member)
        .set("post_step_shared_fraction", pt.post_step_shared_fraction)
        .set("member_steps_per_s", pt.member_steps_per_s);
  }
  rep.root()
      .obj("checkpoint")
      .set("full_interval", ckpt.full_interval)
      .set("steps", ckpt.steps)
      .set("saves", static_cast<std::int64_t>(ckpt.saves))
      .set("fulls", static_cast<std::int64_t>(ckpt.fulls))
      .set("deltas", static_cast<std::int64_t>(ckpt.deltas))
      .set("bytes_written", static_cast<std::int64_t>(ckpt.bytes_written))
      .set("bytes_per_step", ckpt.bytes_per_step)
      .set("full_image_bytes",
           static_cast<std::int64_t>(ckpt.full_image_bytes))
      .set("avg_delta_bytes", ckpt.avg_delta_bytes)
      .set("dirty_chunk_fraction", ckpt.dirty_chunk_fraction)
      .set("blocked_saves", static_cast<std::int64_t>(ckpt.blocked_saves))
      .set("restore_ok", ckpt.restore_ok);
  // The headline COW metrics at the largest fork count, mirrored at the
  // root so report tooling can gate on them without digging into arrays.
  const ForkPoint& widest = forks.back();
  rep.root()
      .set("throughput_monotonic_1_to_4", monotonic_1_to_4(sweep))
      .set("bit_identical_across_worker_counts", bit_identical(sweep))
      .set("resident_bytes_per_member",
           static_cast<std::int64_t>(widest.resident_bytes_per_member))
      .set("cow_shared_fraction", widest.cow_shared_fraction)
      .set("checkpoint_bytes_per_step", ckpt.bytes_per_step);
  // A live engine's aggregate telemetry, so downstream tooling sees the
  // fields svc::Engine::summary_report also emits.
  const svc::EngineStats est = probe.stats();
  rep.root()
      .obj("engine_summary")
      .set("workers", est.workers)
      .set("submitted", est.submitted)
      .set("completed", est.completed)
      .set("faulted", est.faulted)
      .set("cancelled", est.cancelled)
      .set("deadline", est.deadline)
      .set("member_steps", est.member_steps)
      .set("member_steps_per_s", est.member_steps_per_s())
      .set("worker_utilization", est.utilization())
      .set("queue_high_water",
           static_cast<std::int64_t>(est.queue_high_water))
      .set("mesh_bundles", static_cast<std::int64_t>(est.mesh_bundles))
      .set("mesh_bundle_bytes",
           static_cast<std::int64_t>(est.mesh_bundle_bytes))
      .set("mesh_bytes_unshared",
           static_cast<std::int64_t>(est.mesh_bytes_unshared));
  return rep.write(path);
}

void print_table(const EnsembleSpec& spec,
                 const std::vector<SweepPoint>& sweep) {
  std::printf(
      "\n=== Ensemble throughput: %d ne%d members x %d steps "
      "(stall %.0f us/step) ===\n",
      spec.members, spec.ne, spec.steps, spec.stall_s * 1e6);
  std::printf("%8s %10s %16s %10s %8s %10s\n", "workers", "wall_s",
              "member-steps/s", "speedup", "util", "queue_hw");
  for (const auto& pt : sweep)
    std::printf("%8d %10.3f %16.2f %9.2fx %7.0f%% %10zu\n", pt.workers,
                pt.wall_s, pt.member_steps_per_s,
                pt.member_steps_per_s / sweep.front().member_steps_per_s,
                pt.utilization * 100.0, pt.queue_high_water);
  std::printf("shared mesh: %zu bytes resident vs %zu unshared (%.1fx)\n",
              sweep.back().mesh_bundle_bytes,
              sweep.back().mesh_bytes_unshared,
              sweep.back().mesh_bundle_bytes
                  ? static_cast<double>(sweep.back().mesh_bytes_unshared) /
                        static_cast<double>(sweep.back().mesh_bundle_bytes)
                  : 0.0);
  std::printf("member-steps/s strictly increasing 1->4 workers: %s\n",
              monotonic_1_to_4(sweep) ? "yes" : "NO");
  std::printf("final states bit-identical across worker counts: %s\n\n",
              bit_identical(sweep) ? "yes" : "NO");
}

void print_fork_table(const std::vector<ForkPoint>& forks) {
  std::printf("=== COW fork scaling (one warm parent, fork + 1 step) ===\n");
  std::printf("%8s %10s %14s %14s %10s %9s %16s\n", "members", "fork_s",
              "logical/B", "resident/B", "reduce", "shared", "member-steps/s");
  for (const auto& pt : forks) {
    std::printf("%8d %10.4f %14zu %14zu %9.1fx %8.1f%% %16.1f\n", pt.members,
                pt.fork_s, pt.logical_bytes_per_member,
                pt.resident_bytes_per_member, pt.reduction_x,
                pt.cow_shared_fraction * 100.0, pt.member_steps_per_s);
  }
  std::printf("after stepping: %.0f resident B/member, %.1f%% still shared\n\n",
              forks.back().post_step_resident_bytes_per_member,
              forks.back().post_step_shared_fraction * 100.0);
}

void print_ckpt_table(const CkptResult& r) {
  std::printf("=== Delta checkpoints (save every step, full every %d) ===\n",
              r.full_interval);
  std::printf(
      "%llu saves (%llu full + %llu delta) over %d steps: "
      "%.0f B/step vs %zu B full image (%.1fx), "
      "avg delta %.0f B, %.1f%% chunks dirty, %llu blocked saves\n",
      static_cast<unsigned long long>(r.saves),
      static_cast<unsigned long long>(r.fulls),
      static_cast<unsigned long long>(r.deltas), r.steps, r.bytes_per_step,
      r.full_image_bytes,
      r.bytes_per_step > 0.0
          ? static_cast<double>(r.full_image_bytes) / r.bytes_per_step
          : 0.0,
      r.avg_delta_bytes, r.dirty_chunk_fraction * 100.0,
      static_cast<unsigned long long>(r.blocked_saves));
  std::printf("chain restore bit-identical to live state: %s\n\n",
              r.restore_ok ? "yes" : "NO");
}

void register_benchmarks(const std::vector<SweepPoint>& sweep) {
  for (const auto& pt : sweep) {
    const double wall = pt.wall_s;
    const double rate = pt.member_steps_per_s;
    auto* b = benchmark::RegisterBenchmark(
        ("ensemble/workers:" + std::to_string(pt.workers)).c_str(),
        [wall, rate](benchmark::State& state) {
          for (auto _ : state) state.SetIterationTime(wall);
          state.counters["member_steps_per_s"] = rate;
        });
    b->UseManualTime()->Iterations(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opts = bench::BenchOptions::parse(argc, argv);

  EnsembleSpec spec;
  spec.ne = opts.ne_or(4);
  spec.members = opts.members_or(opts.small ? 8 : 32);
  spec.steps = opts.steps_or(opts.small ? 2 : 3);
  spec.stall_s = opts.latency_us_or(40000) * 1e-6;

  std::vector<int> worker_counts{1, 2, 4, 8};
  if (opts.workers > 0)
    worker_counts = opts.workers > 1 ? std::vector<int>{1, opts.workers}
                                     : std::vector<int>{1};
  else if (opts.small)
    worker_counts = {1, 2};

  std::vector<SweepPoint> sweep;
  for (int w : worker_counts) sweep.push_back(run_sweep_point(spec, w));

  print_table(spec, sweep);

  // Fork-scaling phase: one warm parent, COW-forked out to kilomember
  // scale. The counts always reach 1024 — forks are refcount bumps, and
  // each ne4 member steps once, so even the CI smoke run affords it.
  std::vector<int> fork_counts{32, 256, 1024};
  if (spec.members > 0 &&
      std::find(fork_counts.begin(), fork_counts.end(), spec.members) ==
          fork_counts.end()) {
    fork_counts.insert(fork_counts.begin(), spec.members);
    std::sort(fork_counts.begin(), fork_counts.end());
  }
  std::vector<ForkPoint> forks;
  {
    model::Session parent(member_config(spec, 0));
    parent.step();  // warm: stage buffers exist, remap cadence underway
    for (int n : fork_counts)
      forks.push_back(run_fork_point(parent, n, /*steps=*/1));
  }
  print_fork_table(forks);

  const CkptResult ckpt = run_checkpoint_phase(
      spec, opts.ckpt_interval_or(4), std::max(spec.steps, 8));
  print_ckpt_table(ckpt);

  if (!opts.json_path.empty()) {
    // A throwaway engine re-runs a 2-member slice so the JSON carries a
    // live engine summary_report alongside the sweep records.
    svc::Engine probe({.workers = 1, .queue_capacity = 4});
    for (int i = 0; i < 2; ++i) {
      svc::RunRequest req;
      req.config = member_config(spec, i);
      req.steps = 1;
      probe.submit(std::move(req))->wait();
    }
    if (!write_json(opts.json_path, spec, sweep, forks, ckpt, probe))
      return 1;
  }

  register_benchmarks(sweep);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
