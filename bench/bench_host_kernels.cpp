// Host dycore kernel bench: the vectorized/arena rewrite (homme::*) vs
// the frozen scalar reference path (homme::ref::*, per-call heap
// temporaries and all) on identical states.
//
// Three rows, matching the shapes the rewrite targets:
//   column_scans          pressure / geopotential / omega vertical scans
//   compute_and_apply_rhs element_rhs + state update + DSS (Table 1's
//                         biggest host kernel)
//   vertical_remap        cumulative-mass remap of the full state
//
// Each row reports both wall times, the speedup, achieved GFLOP/s of the
// vectorized path (analytic flop counts of the scalar op sequence) and
// main-array bytes touched per point — the arithmetic-intensity numbers
// DESIGN.md section 11 quotes.
//
// Flags (extracted before google-benchmark sees argv):
//   --json <path>  per-kernel numbers as machine-readable JSON
//   --small        CI smoke size (ne=2, nlev=32)
//   --ne/--steps   override mesh resolution / timing repetitions

#include <benchmark/benchmark.h>

#include "bench_common.hpp"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "homme/driver.hpp"
#include "homme/ref_kernels.hpp"
#include "homme/remap.hpp"
#include "homme/rhs.hpp"
#include "homme/vpack.hpp"
#include "obs/report.hpp"
#include "scenario/registry.hpp"

namespace {

using homme::Dims;
using homme::fidx;
using mesh::kNpp;

int g_ne = 4;
int g_nlev = 64;
int g_steps = 20;

struct Row {
  std::string name;
  double scalar_s = 0.0;      ///< per invocation, reference path
  double vector_s = 0.0;      ///< per invocation, rewritten path
  double flops_per_point = 0.0;
  double bytes_per_point = 0.0;
  double max_rel_err = 0.0;   ///< rewrite vs reference on identical input
  std::size_t points = 0;     ///< nelem * nlev * kNpp
  double speedup() const { return scalar_s / vector_s; }
  double gflops() const {
    return flops_per_point * static_cast<double>(points) / vector_s / 1e9;
  }
};

template <class F>
double time_loop(int iters, F&& f) {
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) f();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count() / iters;
}

double max_rel_diff(std::span<const double> a, std::span<const double> b) {
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double scale = std::max({std::abs(a[i]), std::abs(b[i]), 1e-300});
    worst = std::max(worst, std::abs(a[i] - b[i]) / scale);
  }
  return worst;
}

double max_rel_diff_state(const homme::State& a, const homme::State& b,
                          const Dims& d) {
  double worst = 0.0;
  for (std::size_t e = 0; e < a.size(); ++e) {
    worst = std::max(worst, max_rel_diff(a[e].u1, b[e].u1));
    worst = std::max(worst, max_rel_diff(a[e].u2, b[e].u2));
    worst = std::max(worst, max_rel_diff(a[e].T, b[e].T));
    worst = std::max(worst, max_rel_diff(a[e].dp, b[e].dp));
    for (int q = 0; q < d.qsize; ++q) {
      worst = std::max(worst, max_rel_diff(a[e].q(q, d), b[e].q(q, d)));
    }
  }
  return worst;
}

std::vector<Row> run_rows() {
  auto m = mesh::CubedSphere::build(g_ne, mesh::kEarthRadius);
  Dims d;
  d.nlev = g_nlev;
  d.qsize = 2;
  d.moist = true;
  const std::size_t fs = d.field_size();
  const std::size_t points = static_cast<std::size_t>(m.nelem()) * fs;
  // The workset IC comes from the registry: solid-body rotation at the
  // "tracer-advection" scenario's u0, tracers filled in (d.qsize = 2).
  auto s = scenario::initial_state(scenario::get("tracer-advection"), m, d);
  const double dt = homme::Dycore::stable_dt(m);

  std::vector<Row> rows;

  {
    // -- column scans: pressure down, geopotential up, omega down --------
    Row r;
    r.name = "column_scans";
    r.points = points;
    // ~3 (pressure) + 7 (geopotential) + 4 (omega) flops per point.
    r.flops_per_point = 14.0;
    // Reads dp, T, divdp; writes p_mid, phi_mid, omega. 6 doubles/point.
    r.bytes_per_point = 48.0;
    std::vector<double> p_ref(fs), phi_ref(fs), om_ref(fs);
    std::vector<double> p_new(fs), phi_new(fs), om_new(fs);
    const auto& es = s[0];
    auto scans_ref = [&] {
      for (int e = 0; e < m.nelem(); ++e) {
        const auto& el = s[static_cast<std::size_t>(e)];
        homme::ref::column_pressure(d.nlev, el.dp.data(), p_ref.data());
        homme::ref::column_geopotential(d.nlev, el.T.data(), el.dp.data(),
                                        p_ref.data(), el.phis.data(),
                                        phi_ref.data());
        homme::ref::column_omega(d.nlev, el.dp.data(), om_ref.data());
      }
    };
    auto scans_new = [&] {
      for (int e = 0; e < m.nelem(); ++e) {
        const auto& el = s[static_cast<std::size_t>(e)];
        homme::column_pressure(d.nlev, el.dp.data(), p_new.data());
        homme::column_geopotential(d.nlev, el.T.data(), el.dp.data(),
                                   p_new.data(), el.phis.data(),
                                   phi_new.data());
        homme::column_omega(d.nlev, el.dp.data(), om_new.data());
      }
    };
    homme::ref::column_pressure(d.nlev, es.dp.data(), p_ref.data());
    homme::ref::column_geopotential(d.nlev, es.T.data(), es.dp.data(),
                                    p_ref.data(), es.phis.data(),
                                    phi_ref.data());
    homme::ref::column_omega(d.nlev, es.dp.data(), om_ref.data());
    homme::column_pressure(d.nlev, es.dp.data(), p_new.data());
    homme::column_geopotential(d.nlev, es.T.data(), es.dp.data(),
                               p_new.data(), es.phis.data(), phi_new.data());
    homme::column_omega(d.nlev, es.dp.data(), om_new.data());
    r.max_rel_err = std::max({max_rel_diff(p_ref, p_new),
                              max_rel_diff(phi_ref, phi_new),
                              max_rel_diff(om_ref, om_new)});
    r.scalar_s = time_loop(g_steps, scans_ref);
    r.vector_s = time_loop(g_steps, scans_new);
    rows.push_back(r);
  }

  {
    // -- compute_and_apply_rhs (element_rhs + update + DSS) --------------
    Row r;
    r.name = "compute_and_apply_rhs";
    r.points = points;
    // Analytic count of the scalar op sequence per point per level:
    // vorticity ~20, energy/absvort ~12, three gradients ~54, coriolis
    // ~8, flux+divergence ~22, tendencies ~19, scans + omega corr ~20.
    r.flops_per_point = 155.0;
    // Reads u1,u2,T,dp (+q for Tv); writes 4 tendencies + 4 updated
    // fields; scratch p/phi/divdp/omega round trips: ~17 doubles/point.
    r.bytes_per_point = 136.0;
    homme::State out_ref(s.size(), homme::ElementState(d));
    homme::State out_new(s.size(), homme::ElementState(d));
    homme::ref::compute_and_apply_rhs(m, d, s, s, dt, out_ref);
    homme::compute_and_apply_rhs(m, d, s, s, dt, out_new);
    r.max_rel_err = max_rel_diff_state(out_ref, out_new, d);
    r.scalar_s = time_loop(g_steps, [&] {
      homme::ref::compute_and_apply_rhs(m, d, s, s, dt, out_ref);
    });
    r.vector_s = time_loop(g_steps, [&] {
      homme::compute_and_apply_rhs(m, d, s, s, dt, out_new);
    });
    rows.push_back(r);
  }

  {
    // -- vertical remap of the full state --------------------------------
    Row r;
    r.name = "vertical_remap";
    r.points = points;
    // Cumulative-mass scans, monotone slopes and one Hermite eval (with
    // binary search) per point for u1,u2,T and each tracer: ~60/pt.
    r.flops_per_point = 60.0;
    // u1,u2,T,dp + qsize tracers read and written: 2*(4+qsize)*8.
    r.bytes_per_point = 2.0 * (4.0 + d.qsize) * 8.0;
    homme::State a = s, b = s;
    homme::ref::vertical_remap_local(d, a);
    homme::vertical_remap_local(d, b);
    r.max_rel_err = max_rel_diff_state(a, b, d);
    // Remapping an already-remapped state is a valid (near-identity)
    // remap, so the timing loops reuse one working copy.
    r.scalar_s =
        time_loop(g_steps, [&] { homme::ref::vertical_remap_local(d, a); });
    r.vector_s =
        time_loop(g_steps, [&] { homme::vertical_remap_local(d, b); });
    rows.push_back(r);
  }

  return rows;
}

const std::vector<Row>& rows() {
  static const auto r = run_rows();
  return r;
}

void print_table() {
  std::printf(
      "\n=== Host kernels: scalar reference vs vectorized/arena path "
      "(ne=%d, nlev=%d, vpack width %d) ===\n",
      g_ne, g_nlev, homme::kVpackWidth);
  std::printf("%-24s %12s %12s %8s %9s %8s %10s\n", "kernel", "scalar_s",
              "vector_s", "speedup", "GFLOP/s", "B/pt", "max_rel");
  for (const auto& r : rows()) {
    std::printf("%-24s %12.3e %12.3e %7.2fx %9.2f %8.0f %10.2e\n",
                r.name.c_str(), r.scalar_s, r.vector_s, r.speedup(),
                r.gflops(), r.bytes_per_point, r.max_rel_err);
  }
  std::printf("\n");
}

bool write_json(const std::string& path) {
  obs::Report rep("host_kernels");
  rep.config()
      .set("ne", g_ne)
      .set("nlev", g_nlev)
      .set("qsize", 2)
      .set("steps", g_steps)
      .set("vpack_width", homme::kVpackWidth);
  obs::Json& kernels = rep.root().arr("kernels");
  for (const auto& r : rows()) {
    kernels.push()
        .set("name", r.name)
        .set("scalar_s", r.scalar_s)
        .set("vector_s", r.vector_s)
        .set("speedup", r.speedup())
        .set("gflops", r.gflops())
        .set("flops_per_point", r.flops_per_point)
        .set("bytes_per_point", r.bytes_per_point)
        .set("max_rel_err", r.max_rel_err)
        .set("points", static_cast<std::uint64_t>(r.points));
  }
  return rep.write(path);
}

void register_benchmarks() {
  for (const auto& r : rows()) {
    for (auto [path, secs] : {std::pair{"scalar", r.scalar_s},
                              std::pair{"vector", r.vector_s}}) {
      auto* b = benchmark::RegisterBenchmark(
          (r.name + "/" + path).c_str(), [secs](benchmark::State& state) {
            for (auto _ : state) {
              state.SetIterationTime(secs);
            }
          });
      b->UseManualTime()->Iterations(1);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opts = bench::BenchOptions::parse(argc, argv);
  if (opts.small) {
    g_ne = 2;
    g_nlev = 32;
    g_steps = 5;
  }
  g_ne = opts.ne_or(g_ne);
  g_steps = opts.steps_or(g_steps);
  print_table();
  if (!opts.json_path.empty() && !write_json(opts.json_path)) return 1;
  register_benchmarks();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
