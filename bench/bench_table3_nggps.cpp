// Reproduces Table 3: the NGGPS-style comparison of the redesigned HOMME
// against FV3- and MPAS-style dynamical cores on the 12.5 km / 2 h and
// 3 km / 30 min workloads. Methodology in DESIGN.md / EXPERIMENTS.md:
// per-column costs measured from the mini implementations on this host,
// composed with the TaihuLight network model, normalized at the HOMME
// 12.5 km anchor.
//
// The column shape (vertical levels) comes from the "nggps" scenario of
// the scenario:: registry; pass --scenario to re-anchor the measurement
// on another registered workload's shape.

// Pass --json <path> for a machine-readable record of every table row.

#include <benchmark/benchmark.h>

#include "bench_common.hpp"

#include <cstdio>
#include <string>

#include "baselines/nggps.hpp"
#include "obs/report.hpp"
#include "scenario/registry.hpp"

namespace {

std::string g_scenario = "nggps";

const std::vector<baselines::NggpsRow>& rows() {
  static const auto r = [] {
    const scenario::Scenario& sc = scenario::get(g_scenario);
    return baselines::run_nggps(
        baselines::measure_dycore_costs(sc.defaults.nlev));
  }();
  return r;
}

bool write_json(const std::string& path) {
  obs::Report rep("table3_nggps");
  rep.config().set("scenario", g_scenario);
  obs::Json& records = rep.root().arr("records");
  for (const auto& r : rows()) {
    records.push()
        .set("workload", r.workload)
        .set("dycore", r.dycore)
        .set("procs", static_cast<std::int64_t>(r.procs))
        .set("runtime_s", r.runtime_s)
        .set("paper_s", r.paper_s);
  }
  return rep.write(path);
}

void print_table() {
  std::printf("\n=== Table 3: NGGPS dynamical-core comparison ===\n");
  std::printf("%-12s %-20s %10s %12s %12s\n", "workload", "dycore", "procs",
              "ours (s)", "paper (s)");
  for (const auto& r : rows()) {
    std::printf("%-12s %-20s %10lld %12.3f %12.3f\n", r.workload.c_str(),
                r.dycore.c_str(), r.procs, r.runtime_s, r.paper_s);
  }
  const auto& v = rows();
  std::printf(
      "\nShape: HOMME fastest on both workloads; advantage at 3 km vs FV3 "
      "%.2fx (paper 2.1x), vs MPAS %.2fx (paper 4.5x).\n\n",
      v[4].runtime_s / v[3].runtime_s, v[5].runtime_s / v[3].runtime_s);
}

void register_benchmarks() {
  for (const auto& r : rows()) {
    auto* b = benchmark::RegisterBenchmark(
        (r.workload + "/" + r.dycore).c_str(),
        [secs = r.runtime_s](benchmark::State& state) {
          for (auto _ : state) state.SetIterationTime(secs);
        });
    b->UseManualTime()->Iterations(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opts = bench::BenchOptions::parse(argc, argv);
  g_scenario = opts.scenario_or("nggps");
  print_table();
  if (!opts.json_path.empty() && !write_json(opts.json_path)) return 1;
  register_benchmarks();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
